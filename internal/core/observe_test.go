package core

// Observability acceptance tests: the span tree under faults and
// cancellation (no orphan spans — the tracing analogue of the
// goroutine-leak pinning), EXPLAIN ANALYZE on a cross-island CAST, the
// metrics registry fed by real queries, and the §2.1 monitor loop —
// every successful QueryCtx call produces at least one observation.

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// TestTraceRecordsRetryAndRollback pins the span tree of a seeded
// faulted run: a transient commit fault costs one rollback and one
// retry, and both must be visible in the trace.
func TestTraceRecordsRetryAndRollback(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	p := demoStore(t)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
	fault.Arm(fault.Spec{Point: FpCastCommit, Mode: fault.ModeError, Transient: true})

	ctx, root := trace.New(context.Background(), "test")
	res, err := p.CastCtx(ctx, "patients", EngineSciDB, CastOptions{})
	fault.Reset()
	if err != nil {
		t.Fatal(err)
	}
	defer p.dropTempObjects([]string{res.Target})
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	if open := root.Trace().OpenSpans(); open != 1 {
		t.Fatalf("open spans before root end = %d, want 1 (the root)\n%s", open, root.String())
	}
	root.End()

	attempts := root.FindAll("attempt")
	if len(attempts) != 2 {
		t.Fatalf("attempt spans = %d, want 2\n%s", len(attempts), root.String())
	}
	if _, ok := attempts[0].Attr("error"); !ok {
		t.Errorf("first attempt has no error attr\n%s", root.String())
	}
	if root.Find("rollback") == nil {
		t.Errorf("no rollback span recorded\n%s", root.String())
	}
	cast := root.Find("cast")
	if cast == nil {
		t.Fatalf("no cast span\n%s", root.String())
	}
	if a, ok := cast.Attr("retries"); !ok || a.Int != 1 {
		t.Errorf("cast retries attr = %+v ok=%v", a, ok)
	}
	if p.Metrics.Counter("cast.rollbacks").Load() < 1 {
		t.Error("cast.rollbacks counter not incremented")
	}
}

// TestCancelledQueryClosesSpans proves a query cancelled mid-cast ends
// every span it opened: after the root is ended, no span in the tree is
// still open, and no goroutine outlives the call.
func TestCancelledQueryClosesSpans(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	base := runtime.NumGoroutine()
	p := bigStore(t, 100_000)

	// Slow the encoder so the deadline lands mid-wire.
	fault.Arm(fault.Spec{Point: engine.FpEncodeFrame, Mode: fault.ModeDelay,
		Delay: 5 * time.Millisecond, Times: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ctx, root := trace.New(ctx, "test")
	_, err := p.QueryCtx(ctx, `RELATIONAL(SELECT * FROM CAST(big, relation))`)
	fault.Reset()
	if err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if open := root.Trace().OpenSpans(); open != 1 {
		t.Fatalf("open spans after cancelled query = %d, want 1 (the root)\n%s", open, root.String())
	}
	root.End()
	if root.Trace().OpenSpans() != 0 {
		t.Fatal("root did not close")
	}
	waitGoroutines(t, base)
}

// TestExplainAnalyzeCrossIslandCast is the acceptance case: EXPLAIN
// ANALYZE on a cross-island CAST query prints the span tree with
// per-stage durations, wire bytes, rows scanned vs moved, and the
// planner's pushdown decision.
func TestExplainAnalyzeCrossIslandCast(t *testing.T) {
	p := demoStore(t)
	report, rel, err := p.ExplainAnalyze(context.Background(),
		`RELATIONAL(SELECT t FROM CAST(wf, relation) WHERE v > 1)`)
	if err != nil {
		t.Fatalf("%v\n%s", err, report)
	}
	if rel == nil || rel.Len() == 0 {
		t.Fatal("no result rows")
	}
	for _, want := range []string{
		"query", "parse", "plan", "execute", // stage spans
		"cast", "dump", "wire", "load", "commit", // migrate pipeline
		"island=RELATIONAL", "class=lookup",
		"wire_bytes=", "rows_scanned=", "rows_moved=",
		"pushdown=pushed", "predicate=", // the planner's decision
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Every span line carries a duration (µs/ms/s suffix somewhere).
	if !strings.ContainsAny(report, "µm") {
		t.Errorf("report has no durations:\n%s", report)
	}
}

// TestQueryMetricsPopulated runs real queries and checks the registry
// surface: island and class counters, latency histograms for queries
// and casts, wire-byte and row accounting, and the expvar export.
func TestQueryMetricsPopulated(t *testing.T) {
	p := demoStore(t)
	queries := []string{
		`RELATIONAL(SELECT name FROM patients WHERE age > 60)`,
		`RELATIONAL(SELECT t FROM CAST(wf, relation) WHERE v > 1)`,
		`ARRAY(aggregate(wf, avg(v)))`,
	}
	for _, q := range queries {
		if _, err := p.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	snap := p.Metrics.Snapshot()
	if n := snap["query.count.relational"]; n != int64(2) {
		t.Errorf("query.count.relational = %v, want 2", n)
	}
	if n := snap["query.count.array"]; n != int64(1) {
		t.Errorf("query.count.array = %v, want 1", n)
	}
	qh, ok := snap["query.latency"].(metrics.HistogramSnapshot)
	if !ok || qh.Count != 3 {
		t.Errorf("query.latency = %+v", snap["query.latency"])
	}
	if qh.P50Ms < 0 || qh.P99Ms < qh.P50Ms {
		t.Errorf("query quantiles out of order: %+v", qh)
	}
	ch, ok := snap["cast.latency"].(metrics.HistogramSnapshot)
	if !ok || ch.Count < 1 {
		t.Errorf("cast.latency = %+v", snap["cast.latency"])
	}
	for _, name := range []string{"cast.wire_bytes", "cast.rows_scanned", "cast.rows_moved"} {
		if n, _ := snap[name].(int64); n <= 0 {
			t.Errorf("%s = %v, want > 0", name, snap[name])
		}
	}
	if n, _ := snap["engine.postgres.queries"].(int64); n <= 0 {
		t.Errorf("engine.postgres.queries gauge = %v", snap["engine.postgres.queries"])
	}
	// CastStats/RetryStats now read the same counters.
	pushed, full := p.CastStats()
	if pushed+full < 1 {
		t.Errorf("CastStats = %d/%d", pushed, full)
	}
	// The expvar view renders the same snapshot as JSON.
	if s := p.Metrics.String(); !strings.Contains(s, `"query.count.relational": 2`) {
		t.Errorf("expvar string missing counter: %s", s)
	}
}

// TestMonitorFedByQueryCtx pins the paper's loop: every successful
// QueryCtx call feeds at least one (object, class, engine, latency)
// observation into the monitor, attributed to the objects the query
// touched.
func TestMonitorFedByQueryCtx(t *testing.T) {
	p := demoStore(t)
	queries := []string{
		`RELATIONAL(SELECT COUNT(*) AS n FROM patients)`,
		`RELATIONAL(SELECT t FROM CAST(wf, relation) WHERE v > 1)`,
		`ARRAY(filter(wf, v > 0))`,
	}
	for _, q := range queries {
		before := p.Monitor.TotalObservations()
		if _, err := p.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if after := p.Monitor.TotalObservations(); after <= before {
			t.Errorf("%s: observations %d -> %d, want an increase", q, before, after)
		}
	}
	// The analytics query over patients landed under the right triple.
	if _, ok := p.Monitor.Latency("patients", monitor.ClassSQLAnalytics, string(EnginePostgres)); !ok {
		t.Error("no (patients, sql_analytics, postgres) observation")
	}
	// And a failed query records nothing.
	before := p.Monitor.TotalObservations()
	if _, err := p.Query(`RELATIONAL(SELECT * FROM no_such_table_anywhere)`); err == nil {
		t.Fatal("bogus query succeeded")
	}
	if after := p.Monitor.TotalObservations(); after != before {
		t.Errorf("failed query recorded observations: %d -> %d", before, after)
	}
}

// TestClassifyBody spot-checks the query classifier across islands.
func TestClassifyBody(t *testing.T) {
	for _, tc := range []struct {
		island Island
		body   string
		want   monitor.QueryClass
	}{
		{IslandRelational, "SELECT name FROM patients WHERE id = 1", monitor.ClassLookup},
		{IslandRelational, "SELECT AVG(age) FROM patients GROUP BY ward", monitor.ClassSQLAnalytics},
		{IslandPostgres, "SELECT a FROM t JOIN u ON a = b", monitor.ClassSQLAnalytics},
		{IslandArray, "filter(wf, v > 0)", monitor.ClassLookup},
		{IslandArray, "aggregate(wf, avg(v))", monitor.ClassSQLAnalytics},
		{IslandArray, "multiply(a, b)", monitor.ClassLinearAlgebra},
		{IslandSciDB, "regrid(wf, 4, avg(v))", monitor.ClassLinearAlgebra},
		{IslandAccumulo, "search(notes, 'sick', 2)", monitor.ClassTextSearch},
		{IslandAccumulo, "get(notes, 'r1')", monitor.ClassLookup},
		{IslandSStore, "window(vitals)", monitor.ClassStreaming},
		{IslandD4M, "bfs(edges, 'a', 5)", monitor.ClassLinearAlgebra},
	} {
		if got := classifyBody(tc.island, tc.body); got != tc.want {
			t.Errorf("classify %s(%s) = %v, want %v", tc.island, tc.body, got, tc.want)
		}
	}
}

// TestObsDisabledZeroAlloc pins the alloc budget of the instrumentation
// a production (untraced) call pays: span sites allocate nothing and
// the metrics hot path is a handful of atomics. CI runs this; a future
// edit that makes the disabled path allocate fails here, not in a
// profile three PRs later.
func TestObsDisabledZeroAlloc(t *testing.T) {
	p := demoStore(t)
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		sctx, sp := trace.Start(ctx, "x")
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		child := trace.FromContext(sctx).StartChild("y")
		child.End()
		sp.End()
		p.om.queryLatency.Observe(time.Microsecond)
		p.om.queryErrors.Inc()
		if c := p.om.queryCount[IslandRelational]; c != nil {
			c.Inc()
		}
	}); n != 0 {
		t.Fatalf("disabled observability allocates %v per op, want 0", n)
	}
}

// TestRetryStatsRaceClean hammers RetryStats/CastStats readers against
// concurrent casting writers — meaningful under -race.
func TestRetryStatsRaceClean(t *testing.T) {
	p := demoStore(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			func() {
				res, err := p.Cast("patients", EngineSciDB, CastOptions{})
				if err != nil {
					return
				}
				defer p.dropTempObjects([]string{res.Target})
			}()
		}
	}()
	for i := 0; i < 200; i++ {
		_ = p.RetryStats()
		pushed, full := p.CastStats()
		_ = pushed + full
		_ = p.Metrics.Snapshot()
	}
	<-done
}
