package core

// Fuzz and property tests for the SCOPE/CAST surface syntax —
// parseScope, findCall, splitTopArgs and the Query entry point. The
// parsers are hand-rolled scanners, so the risks are classic: quote
// handling (a 'CAST(' inside a string literal must be invisible),
// unbalanced parentheses (error, never a silent truncation), and deep
// nesting (must stay iterative — no stack-overflow panics).
//
// Run the fuzzers properly with e.g.:
//
//	go test ./internal/core -fuzz FuzzFindCall -fuzztime 30s

import (
	"context"
	"strings"
	"testing"
)

func FuzzParseScope(f *testing.F) {
	for _, s := range []string{
		"RELATIONAL(SELECT 1)",
		"ARRAY(filter(CAST(wf, array), v > 1))",
		"TEXT(scan(CAST(x, text), 'a(', 'b)'))",
		"RELATIONAL(SELECT 'CAST(x, y)' FROM t)",
		"RELATIONAL(a(b)",
		"NOPE(x)",
		"(x)",
		"RELATIONAL(((((((((()))))))))))",
		"relational(SELECT ')' FROM t)",
		"RELATIONAL(SELECT * FROM t) -- trailing",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		sq, err := parseScope(q) // must never panic
		if err != nil {
			return
		}
		// A successful parse promises a known island and a body whose
		// parens balance outside string literals — the contract every
		// downstream scanner (findCall, splitTopArgs) assumes.
		known := false
		for _, is := range Islands() {
			if sq.island == is {
				known = true
			}
		}
		if !known {
			t.Fatalf("parseScope(%q) accepted unknown island %q", q, sq.island)
		}
		if !balanced(sq.body) {
			t.Fatalf("parseScope(%q) accepted unbalanced body %q", q, sq.body)
		}
	})
}

func FuzzFindCall(f *testing.F) {
	for _, s := range []string{
		"CAST(a, b)",
		"SELECT 'CAST(x, y)' FROM CAST(wf, relation)",
		"cast(CAST(a, b), c)",
		"BROADCAST(a)",
		"CAST(a, b",
		"CAST('unterminated",
		strings.Repeat("CAST(", 2000) + "x" + strings.Repeat(")", 2000),
		"filter(CAST(x, array), v > '(' )",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		start, end, ok := findCall(s, "CAST", 0) // must never panic
		if !ok {
			return
		}
		if start < 0 || end > len(s) || start >= end {
			t.Fatalf("findCall(%q) returned bad span [%d, %d)", s, start, end)
		}
		span := s[start:end]
		if !strings.HasPrefix(strings.ToUpper(span), "CAST(") || !strings.HasSuffix(span, ")") {
			t.Fatalf("findCall(%q) span %q is not a CAST call", s, span)
		}
		if start > 0 && isWordChar(s[start-1]) {
			t.Fatalf("findCall(%q) matched mid-word at %d", s, start)
		}
		// The span's interior must itself split without panicking.
		_ = splitTopArgs(span[len("CAST(") : len(span)-1])
	})
}

func FuzzSplitTopArgs(f *testing.F) {
	for _, s := range []string{
		"a, b",
		"f(a, b), c",
		"'a, b', c",
		"', ', ', '",
		"(a, (b, c)), d",
		"unbalanced (a, b",
		"",
		",",
		strings.Repeat("(", 5000) + strings.Repeat(")", 5000),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		args := splitTopArgs(body) // must never panic
		// Dropping separators never invents characters: the args must
		// all be substrings, in order, of the original body.
		from := 0
		for _, a := range args {
			i := strings.Index(body[from:], a)
			if i < 0 {
				t.Fatalf("splitTopArgs(%q) invented arg %q", body, a)
			}
			from += i + len(a)
		}
	})
}

// FuzzQueryNoPanic drives the full Query pipeline — scope parse, CAST
// planning/resolution, island dispatch — over a live federation.
// Whatever the input, Query must return a result or an error, never
// panic, and must leave no temp objects behind.
func FuzzQueryNoPanic(f *testing.F) {
	for _, s := range []string{
		`RELATIONAL(SELECT * FROM CAST(wf, relation) WHERE v > 1.5)`,
		`ARRAY(aggregate(filter(CAST(patients, array), age > 60), avg(age)))`,
		`TEXT(scan(CAST(patients, text), '1', '3'))`,
		`RELATIONAL(SELECT COUNT(*) FROM CAST(ARRAY(filter(wf, v > 1.5)), relation))`,
		`RELATIONAL(SELECT 'CAST(wf, relation)' FROM patients)`,
		`RELATIONAL(SELECT * FROM CAST(wf))`,
		`RELATIONAL(SELECT * FROM CAST(wf, hologram))`,
		`RELATIONAL(` + strings.Repeat("CAST(", 64) + "wf" + strings.Repeat(", relation)", 64) + `)`,
		`TEXT(get(CAST(notes, text), 'p1'')'))`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 4096 {
			return // keep individual executions bounded
		}
		p := demoStore(t)
		before := len(p.Objects())
		_, _ = p.Query(q) // must never panic
		if after := len(p.Objects()); after != before {
			t.Fatalf("Query(%q) leaked %d temp objects", q, after-before)
		}
	})
}

// Deterministic regressions for the scanner edge cases the fuzzers
// seed: quoted CAST terms, unbalanced input, deep nesting.
func TestFindCallEdgeCases(t *testing.T) {
	if _, _, ok := findCall(`SELECT 'CAST(x, y)' FROM t`, "CAST", 0); ok {
		t.Error("findCall matched a CAST inside a string literal")
	}
	if _, _, ok := findCall(`BROADCAST(x)`, "CAST", 0); ok {
		t.Error("findCall matched a word-suffix CAST")
	}
	if _, _, ok := findCall(`CAST(a, b`, "CAST", 0); ok {
		t.Error("findCall accepted an unterminated call")
	}
	if _, _, ok := findCall(`CAST('a)b', c)`, "CAST", 0); !ok {
		t.Error("findCall must see through quoted close parens")
	}
	start, end, ok := findCall(`x CAST(f(a), g(b, h(c)))`, "CAST", 0)
	if !ok || start != 2 || end != 24 {
		t.Errorf("nested-call span: [%d, %d) ok=%v", start, end, ok)
	}
	deep := strings.Repeat("f(", 100_000) + "x" + strings.Repeat(")", 100_000)
	if _, _, ok := findCall("CAST("+deep+", relation)", "CAST", 0); !ok {
		t.Error("findCall must handle deep nesting iteratively")
	}
}

func TestSplitTopArgsEdgeCases(t *testing.T) {
	got := splitTopArgs(`f(a, b), 'x, y', c`)
	if len(got) != 3 || got[0] != "f(a, b)" || got[1] != "'x, y'" || got[2] != "c" {
		t.Errorf("splitTopArgs: %q", got)
	}
	if got := splitTopArgs(""); got != nil {
		t.Errorf("empty body: %q", got)
	}
	if got := splitTopArgs(","); len(got) != 2 {
		t.Errorf("bare comma must produce two (empty) args, got %q", got)
	}
}

func TestParseScopeRejectsMalformed(t *testing.T) {
	bad := []string{
		"RELATIONAL(SELECT 1",        // unterminated
		"RELATIONAL(SELECT 1) extra", // trailing junk
		"RELATIONAL(a))",             // body over-closes
		"RELATIONAL(')",              // unterminated string hides the close
		"RELATIONAL" + strings.Repeat("(", 50_000) + strings.Repeat(")", 49_999),
	}
	for _, q := range bad {
		if _, err := parseScope(q); err == nil {
			t.Errorf("parseScope(%q) should fail", trunc(q))
		}
	}
	// Deeply nested but balanced bodies parse fine (and iteratively).
	deep := "ARRAY" + strings.Repeat("(", 50_000) + "x" + strings.Repeat(")", 50_000)
	if _, err := parseScope(deep); err != nil {
		t.Errorf("balanced deep nesting should parse: %v", err)
	}
}

func trunc(s string) string {
	if len(s) > 60 {
		return s[:60] + "…"
	}
	return s
}

// TestCastCountGuardBoundary pins the CAST-count guard on both
// resolver paths: a body with exactly maxCastsPerQuery CAST terms
// resolves on planner-on and planner-off alike, one more errors on
// both — the planner-off guard used to trip one cast early, making
// SetPushdown(false) a non-equivalent baseline at the boundary.
func TestCastCountGuardBoundary(t *testing.T) {
	body := func(n int) string {
		terms := make([]string, n)
		for i := range terms {
			terms[i] = "CAST(wf, relation)"
		}
		return "f(" + strings.Join(terms, ", ") + ")"
	}
	p := demoStore(t)
	for _, tc := range []struct {
		n  int
		ok bool
	}{{maxCastsPerQuery, true}, {maxCastsPerQuery + 1, false}} {
		_, temps, err := p.resolveCasts(context.Background(), body(tc.n))
		//lint:ignore templeak per-iteration cleanup in a bounded table-driven loop; a defer would pile temps up until the test returns
		p.dropTempObjects(temps)
		if (err == nil) != tc.ok {
			t.Errorf("resolveCasts with %d CAST terms: err=%v, want ok=%v", tc.n, err, tc.ok)
		}
		_, pend, err := p.extractCasts(context.Background(), body(tc.n))
		for _, pc := range pend {
			//lint:ignore templeak per-iteration cleanup in a bounded table-driven loop; a defer would pile temps up until the test returns
			p.dropTempObjects([]string{pc.placeholder})
		}
		if (err == nil) != tc.ok {
			t.Errorf("extractCasts with %d CAST terms: err=%v, want ok=%v", tc.n, err, tc.ok)
		}
		// The array planner executes pushable filter-casts itself; they
		// must draw from the same budget, not get a second allowance.
		arrTerms := make([]string, tc.n)
		for i := range arrTerms {
			arrTerms[i] = "filter(CAST(wf, array), v > 1.5)"
		}
		_, temps, err = p.planArray(context.Background(), "f("+strings.Join(arrTerms, ", ")+")")
		//lint:ignore templeak per-iteration cleanup in a bounded table-driven loop; a defer would pile temps up until the test returns
		p.dropTempObjects(temps)
		if (err == nil) != tc.ok {
			t.Errorf("planArray with %d pushable CAST terms: err=%v, want ok=%v", tc.n, err, tc.ok)
		}
	}
}
