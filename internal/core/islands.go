package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/myria"
	"repro/internal/relational"
	"repro/internal/trace"
)

// Query executes one SCOPE/CAST query, e.g.
//
//	RELATIONAL(SELECT * FROM CAST(wf, relation) WHERE v > 5)
//	ARRAY(aggregate(filter(wf, v > 0), avg(v)))
//	TEXT(search(notes, 'very sick', 3))
//	STREAM(aggregate(vitals, avg, v))
//	D4M(bfs(edges, 'a', 5))
//
// CAST terms are resolved first (migrating data between engines as
// needed, §2.1), then the body is dispatched to the island. The first
// argument of CAST may itself be a nested island query, which composes
// cross-island pipelines.
//
// When pushdown is enabled (the default) the planner in planner.go
// rewrites CAST-bearing bodies so each migration carries only the rows
// and columns the island body can observe; SetPushdown(false) restores
// the migrate-everything path. Either way, the temp objects a query
// mints (cast copies, nested sub-results, shims) are dropped — catalog
// entry and physical storage — before Query returns, so long-running
// polystores no longer accumulate them.
func (p *Polystore) Query(q string) (*engine.Relation, error) {
	return p.QueryCtx(context.Background(), q)
}

// QueryCtx is Query with cancellation and deadlines: a done context
// tears down any in-flight CAST pipeline (encoder, decoder and their
// pipe all unwind — no goroutine outlives the call) and the atomic-cast
// machinery guarantees the catalog and engines are left exactly as
// they were before the query started.
//
// Every call is observable twice over: when ctx carries a trace (see
// internal/trace and ExplainAnalyze) the parse → plan → execute stages
// open spans, with the per-cast migrate pipeline nesting underneath;
// and every successful call classifies the query (monitor.QueryClass)
// and feeds an (object, class, engine, latency) observation into
// p.Monitor — the paper's §2.1 loop, closed from live traffic instead
// of hand-written probe calls.
func (p *Polystore) QueryCtx(ctx context.Context, q string) (*engine.Relation, error) {
	start := time.Now()
	ctx, qspan := trace.Start(ctx, "query")
	defer qspan.End()
	_, pspan := trace.Start(ctx, "parse")
	sq, err := parseScope(q)
	pspan.End()
	if err != nil {
		p.om.queryErrors.Inc()
		return nil, err
	}
	class := classifyBody(sq.island, sq.body)
	qspan.SetStr("island", string(sq.island))
	qspan.SetStr("class", string(class))
	rel, err := p.executeBody(ctx, sq.island, sq.body)
	if err != nil {
		p.om.queryErrors.Inc()
		return nil, err
	}
	elapsed := time.Since(start)
	p.om.queryLatency.Observe(elapsed)
	if c := p.om.queryCount[sq.island]; c != nil {
		c.Inc()
	}
	if c := p.om.classCount[class]; c != nil {
		c.Inc()
	}
	p.observeQuery(sq.island, class, sq.body, elapsed)
	return rel, nil
}

// executeBody routes a raw (SCOPE-stripped) body: bodies that mention
// sharded objects take the scatter-gather path (scatter.go); everything
// else plans and executes locally.
func (p *Polystore) executeBody(ctx context.Context, island Island, body string) (*engine.Relation, error) {
	if names := p.shardedRefs(body); len(names) > 0 {
		return p.scatterExecute(ctx, island, body, names)
	}
	return p.executeLocal(ctx, island, body)
}

// executeLocal is the single-node execution path: plan (CAST pushdown,
// cast resolution), reclaim the query's temp objects, and dispatch the
// prepared body to its island.
func (p *Polystore) executeLocal(ctx context.Context, island Island, body string) (*engine.Relation, error) {
	plctx, plspan := trace.Start(ctx, "plan")
	prepared, temps, err := p.prepareBody(plctx, island, body)
	plspan.End()
	defer p.dropTempObjects(temps)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	ectx, espan := trace.Start(ctx, "execute")
	rel, err := p.dispatch(ectx, island, prepared)
	espan.End()
	return rel, err
}

// dispatch routes a prepared body to its island.
func (p *Polystore) dispatch(ctx context.Context, island Island, body string) (*engine.Relation, error) {
	switch island {
	case IslandPostgres:
		return p.Relational.Execute(body)
	case IslandSciDB:
		return p.ArrayStore.Query(body)
	case IslandRelational:
		return p.relationalIsland(ctx, body)
	case IslandArray:
		return p.arrayIsland(ctx, body)
	case IslandAccumulo:
		return p.textIsland(body)
	case IslandSStore:
		return p.streamIsland(body)
	case IslandD4M:
		return p.d4mIsland(body)
	case IslandMyria:
		return nil, fmt.Errorf("core: the MYRIA island is programmatic; use ExecuteMyria")
	default:
		return nil, fmt.Errorf("core: island %q not dispatchable", island)
	}
}

// resolveCasts rewrites every CAST(obj-or-query, target) in the body,
// performing the full (unfiltered) migration and substituting the
// migrated object's name — the planner-off path, and the fallback for
// bodies the planner cannot analyse. The minted temp names are returned
// (also on error) so the caller can reclaim them after the query.
func (p *Polystore) resolveCasts(ctx context.Context, body string) (string, []string, error) {
	return p.resolveCastsBudget(ctx, body, maxCastsPerQuery)
}

// resolveCastsBudget is resolveCasts with an explicit CAST budget:
// planners that already executed some of the body's CAST terms pass
// the remainder, so a query resolves exactly maxCastsPerQuery terms —
// and errors on one more — whether or not pushdown planned it.
func (p *Polystore) resolveCastsBudget(ctx context.Context, body string, budget int) (string, []string, error) {
	var temps []string
	for resolved := 0; ; resolved++ {
		start, end, ok := findCall(body, "CAST", 0)
		if !ok {
			return body, temps, nil
		}
		if resolved >= budget {
			// Same boundary as extractCasts: exactly maxCastsPerQuery CAST
			// terms resolve, one more errors — on both planner paths.
			break
		}
		inner := body[start+len("CAST(") : end-1]
		args := splitTopArgs(inner)
		if len(args) != 2 {
			return "", temps, fmt.Errorf("core: CAST takes (object, target), got %q", inner)
		}
		target, err := castTargetEngine(args[1])
		if err != nil {
			return "", temps, err
		}
		src := strings.TrimSpace(args[0])
		var castName string
		if looksLikeIslandQuery(src) {
			// Nested island query: execute, then load the result.
			rel, err := p.QueryCtx(ctx, src)
			if err != nil {
				return "", temps, err
			}
			castName = p.tempName("subq")
			temps = append(temps, castName)
			if err := p.LoadCtx(ctx, target, castName, rel, CastOptions{}); err != nil {
				return "", temps, err
			}
		} else {
			res, err := p.CastCtx(ctx, src, target, CastOptions{})
			if res.Target != "" {
				temps = append(temps, res.Target)
			}
			if err != nil {
				return "", temps, err
			}
			castName = res.Target
		}
		body = body[:start] + castName + body[end:]
	}
	return "", temps, fmt.Errorf("core: too many nested CASTs")
}

func looksLikeIslandQuery(s string) bool {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return false
	}
	_, err := parseScope(s)
	return err == nil
}

// relationalIsland runs a SELECT with location transparency: tables
// that live outside the relational engine are shimmed in (a temp copy
// is cast over) before execution. This is the multi-engine SQL island.
// Shim casts get the same pushdown analysis as explicit CASTs — the
// query's own WHERE and column references travel down into the foreign
// engine — and shim copies are dropped once the SELECT completes.
func (p *Polystore) relationalIsland(ctx context.Context, body string) (*engine.Relation, error) {
	stmt, err := relational.Parse(body)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*relational.Select)
	if !ok {
		return nil, fmt.Errorf("core: the RELATIONAL island accepts SELECT only (DDL/DML go to POSTGRES)")
	}
	// Shim pushdown analysis is computed lazily, on the first table that
	// actually needs a cross-engine shim: the common all-relational (or
	// all-placeholder) SELECT never pays for a second analyzeTables pass
	// on top of the planner's.
	var tables []pdTable
	analyzed := false
	var temps []string
	defer func() { p.dropTempObjects(temps) }()
	shim := func(ref *relational.TableRef, ti int) error {
		if ref == nil {
			return nil
		}
		info, known := p.Lookup(ref.Name)
		if !known {
			return nil // let the engine report unknown tables
		}
		if info.Engine == EnginePostgres {
			if !strings.EqualFold(info.Physical, ref.Name) {
				if ref.Alias == "" {
					ref.Alias = ref.Name
				}
				ref.Name = info.Physical
			}
			return nil
		}
		if !analyzed && p.pushdownOn() {
			tables = p.analyzeTables(sel, nil)
			analyzed = true
		}
		opts := CastOptions{}
		if tables != nil && ti < len(tables) {
			opts.Predicate, opts.Columns = computePushdown(sel, tables, ti)
		}
		res, err := p.CastCtx(ctx, ref.Name, EnginePostgres, opts)
		if res.Target != "" {
			temps = append(temps, res.Target)
		}
		if err != nil {
			return fmt.Errorf("core: shim %s from %s: %w", ref.Name, info.Engine, err)
		}
		if ref.Alias == "" {
			ref.Alias = ref.Name // keep qualified column refs working
		}
		ref.Name = res.Target
		return nil
	}
	if err := shim(sel.From, 0); err != nil {
		return nil, err
	}
	for i := range sel.Joins {
		if err := shim(&sel.Joins[i].Table, 1+i); err != nil {
			return nil, err
		}
	}
	return p.Relational.ExecuteSelect(sel)
}

// arrayIsland runs an AFL query with location transparency: named
// objects living outside the array engine are shimmed in first. Shim
// copies are dropped once the query completes.
func (p *Polystore) arrayIsland(ctx context.Context, body string) (*engine.Relation, error) {
	var temps []string
	defer func() { p.dropTempObjects(temps) }()
	for _, obj := range p.Objects() {
		if obj.Engine == EngineSciDB {
			continue
		}
		if !containsWord(body, obj.Name) {
			continue
		}
		res, err := p.CastCtx(ctx, obj.Name, EngineSciDB, CastOptions{})
		if res.Target != "" {
			temps = append(temps, res.Target)
		}
		if err != nil {
			return nil, fmt.Errorf("core: shim %s from %s: %w", obj.Name, obj.Engine, err)
		}
		body = replaceWord(body, obj.Name, res.Target)
	}
	return p.ArrayStore.Query(body)
}

// countWord counts whole-word, case-insensitive, non-overlapping
// occurrences outside quotes.
func countWord(s, word string) int {
	upper := strings.ToUpper(s)
	uw := strings.ToUpper(word)
	count := 0
	inStr := false
	for i := 0; i+len(uw) <= len(s); {
		if inStr {
			if s[i] == '\'' {
				inStr = false
			}
			i++
			continue
		}
		if s[i] == '\'' {
			inStr = true
			i++
			continue
		}
		if strings.HasPrefix(upper[i:], uw) &&
			(i == 0 || !isWordChar(s[i-1])) &&
			(i+len(uw) >= len(s) || !isWordChar(s[i+len(uw)])) {
			count++
			i += len(uw)
			continue
		}
		i++
	}
	return count
}

// containsWord reports a whole-word, case-insensitive occurrence
// outside quotes.
func containsWord(s, word string) bool { return countWord(s, word) > 0 }

func replaceWord(s, word, with string) string {
	upper := strings.ToUpper(s)
	uw := strings.ToUpper(word)
	var sb strings.Builder
	inStr := false
	for i := 0; i < len(s); {
		if inStr {
			if s[i] == '\'' {
				inStr = false
			}
			sb.WriteByte(s[i])
			i++
			continue
		}
		if s[i] == '\'' {
			inStr = true
			sb.WriteByte(s[i])
			i++
			continue
		}
		if strings.HasPrefix(upper[i:], uw) &&
			(i == 0 || !isWordChar(s[i-1])) &&
			(i+len(uw) >= len(s) || !isWordChar(s[i+len(uw)])) {
			sb.WriteString(with)
			i += len(uw)
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// textIsland dispatches the Accumulo degenerate island's commands:
//
//	search(table, 'phrase', minCount)
//	searchscan(table, 'phrase', minCount)   — unindexed baseline
//	scan(table [, 'startRow' [, 'endRow']])
//	get(table, 'row')
//	count(table)
func (p *Polystore) textIsland(body string) (*engine.Relation, error) {
	cmd, args, err := parseCommand(body)
	if err != nil {
		return nil, err
	}
	physical := func(obj string) string {
		if info, known := p.Lookup(obj); known {
			return info.Physical
		}
		return obj
	}
	switch cmd {
	case "search", "searchscan":
		if len(args) != 3 {
			return nil, fmt.Errorf("core: %s(table, 'phrase', minCount)", cmd)
		}
		minCount, err := strconv.Atoi(strings.TrimSpace(args[2]))
		if err != nil {
			return nil, fmt.Errorf("core: bad minCount %q", args[2])
		}
		table := physical(args[0])
		phrase := unquote(args[1])
		var results []struct {
			Row   string
			Count int
		}
		if cmd == "search" {
			rs, err := p.KV.Search(table, phrase, minCount)
			if err != nil {
				return nil, err
			}
			for _, r := range rs {
				results = append(results, struct {
					Row   string
					Count int
				}{r.Row, r.Count})
			}
		} else {
			rs, err := p.KV.SearchScan(table, phrase, minCount)
			if err != nil {
				return nil, err
			}
			for _, r := range rs {
				results = append(results, struct {
					Row   string
					Count int
				}{r.Row, r.Count})
			}
		}
		rel := engine.NewRelation(engine.NewSchema(
			engine.Col("row", engine.TypeString), engine.Col("count", engine.TypeInt)))
		for _, r := range results {
			_ = rel.Append(engine.Tuple{engine.NewString(r.Row), engine.NewInt(int64(r.Count))})
		}
		return rel, nil
	case "scan":
		if len(args) < 1 || len(args) > 3 {
			return nil, fmt.Errorf("core: scan(table [, start [, end]])")
		}
		startRow, endRow := "", ""
		if len(args) >= 2 {
			startRow = unquote(args[1])
		}
		if len(args) == 3 {
			endRow = unquote(args[2])
		}
		rel := kvResultRelation()
		err := p.KV.Scan(physical(args[0]), startRow, endRow, nil, kvAppend(rel))
		if err != nil {
			return nil, err
		}
		return rel, nil
	case "get":
		if len(args) != 2 {
			return nil, fmt.Errorf("core: get(table, 'row')")
		}
		es, err := p.KV.Get(physical(args[0]), unquote(args[1]))
		if err != nil {
			return nil, err
		}
		rel := kvResultRelation()
		app := kvAppend(rel)
		for _, e := range es {
			_ = app(e)
		}
		return rel, nil
	case "count":
		if len(args) != 1 {
			return nil, fmt.Errorf("core: count(table)")
		}
		n, err := p.KV.Len(physical(args[0]))
		if err != nil {
			return nil, err
		}
		rel := engine.NewRelation(engine.NewSchema(engine.Col("count", engine.TypeInt)))
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(n))})
		return rel, nil
	default:
		return nil, fmt.Errorf("core: unknown text island command %q", cmd)
	}
}

// streamIsland dispatches the S-Store degenerate island's commands:
//
//	window(stream)            — the current sliding window
//	aggregate(stream, kind, col)
//	appended(stream)
func (p *Polystore) streamIsland(body string) (*engine.Relation, error) {
	cmd, args, err := parseCommand(body)
	if err != nil {
		return nil, err
	}
	physical := func(obj string) string {
		if info, known := p.Lookup(obj); known {
			return info.Physical
		}
		return obj
	}
	switch cmd {
	case "window":
		if len(args) != 1 {
			return nil, fmt.Errorf("core: window(stream)")
		}
		return p.Streams.Dump(physical(args[0]))
	case "aggregate":
		if len(args) != 3 {
			return nil, fmt.Errorf("core: aggregate(stream, kind, col)")
		}
		w, err := p.Streams.Window(physical(args[0]))
		if err != nil {
			return nil, err
		}
		v, err := w.Aggregate(strings.TrimSpace(args[1]), strings.TrimSpace(args[2]))
		if err != nil {
			return nil, err
		}
		rel := engine.NewRelation(engine.NewSchema(engine.Col("value", engine.TypeFloat)))
		_ = rel.Append(engine.Tuple{engine.NewFloat(v)})
		return rel, nil
	case "appended":
		if len(args) != 1 {
			return nil, fmt.Errorf("core: appended(stream)")
		}
		n, err := p.Streams.Appended(physical(args[0]))
		if err != nil {
			return nil, err
		}
		rel := engine.NewRelation(engine.NewSchema(engine.Col("appended", engine.TypeInt)))
		_ = rel.Append(engine.Tuple{engine.NewInt(n)})
		return rel, nil
	default:
		return nil, fmt.Errorf("core: unknown stream island command %q", cmd)
	}
}

// parseCommand splits "name(arg1, arg2)" into lower-cased name + args.
func parseCommand(body string) (string, []string, error) {
	body = strings.TrimSpace(body)
	open := strings.IndexByte(body, '(')
	if open <= 0 || !strings.HasSuffix(body, ")") {
		return "", nil, fmt.Errorf("core: malformed command %q", body)
	}
	name := strings.ToLower(strings.TrimSpace(body[:open]))
	inner := body[open+1 : len(body)-1]
	if !balanced(inner) {
		return "", nil, fmt.Errorf("core: unbalanced command %q", body)
	}
	return name, splitTopArgs(inner), nil
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return s[1 : len(s)-1]
	}
	return s
}

func kvResultRelation() *engine.Relation {
	return engine.NewRelation(engine.NewSchema(
		engine.Col("row", engine.TypeString), engine.Col("family", engine.TypeString),
		engine.Col("qualifier", engine.TypeString), engine.Col("ts", engine.TypeInt),
		engine.Col("value", engine.TypeString),
	))
}

func kvAppend(rel *engine.Relation) func(e kvstore.Entry) error {
	return func(e kvstore.Entry) error {
		return rel.Append(engine.Tuple{
			engine.NewString(e.Key.Row), engine.NewString(e.Key.Family),
			engine.NewString(e.Key.Qualifier), engine.NewInt(e.Key.Timestamp),
			engine.NewString(e.Value),
		})
	}
}

// ExecuteMyria runs a Myria plan (relational algebra + iteration)
// against the polystore: Scan nodes resolve through the catalog, so a
// single plan can join a Postgres table with a SciDB array — the Myria
// island's multi-engine promise. The plan is optimized first.
func (p *Polystore) ExecuteMyria(plan myria.Plan) (*engine.Relation, *myria.Stats, error) {
	return myria.Execute(myria.Optimize(plan), polySource{p})
}

// polySource adapts the polystore catalog to myria.Source.
type polySource struct{ p *Polystore }

// Relation implements myria.Source by dumping the object from whichever
// engine holds it.
func (s polySource) Relation(name string) (*engine.Relation, error) {
	return s.p.Dump(name)
}
