package core

import (
	"testing"

	"repro/internal/monitor"
)

func TestProbeCommonSemantics(t *testing.T) {
	p := demoStore(t)
	// Replicate wf into the relational engine so both islands can
	// compute the same aggregates over it.
	if _, err := p.Cast("wf", EnginePostgres, CastOptions{TargetName: "wf_pg"}); err != nil {
		t.Fatal(err)
	}
	tasks := []ProbeTask{
		{
			Name: "count_cells",
			Queries: map[Island]string{
				IslandPostgres: `SELECT COUNT(*) FROM wf_pg`,
				IslandSciDB:    `aggregate(wf, count(v))`,
			},
		},
		{
			Name: "sum_v",
			Queries: map[Island]string{
				IslandPostgres: `SELECT SUM(v) FROM wf_pg`,
				IslandSciDB:    `aggregate(wf, sum(v))`,
			},
		},
		{
			// Deliberate semantic mismatch: MAX(t) vs max(v).
			Name: "mismatched",
			Queries: map[Island]string{
				IslandPostgres: `SELECT MAX(t) FROM wf_pg`,
				IslandSciDB:    `aggregate(wf, max(v))`,
			},
		},
		{
			// One island lacks the capability entirely.
			Name: "text_only",
			Queries: map[Island]string{
				IslandAccumulo: `count(notes)`,
				IslandSciDB:    `frobnicate(wf)`,
			},
		},
	}
	results, err := p.ProbeCommonSemantics(tasks)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ProbeResult{}
	for _, r := range results {
		byName[r.Task] = r
	}
	if got := byName["count_cells"]; len(got.Agreeing) != 2 || len(got.Disagreeing) != 0 {
		t.Errorf("count_cells should agree across islands: %+v", got)
	}
	if got := byName["sum_v"]; len(got.Agreeing) != 2 {
		t.Errorf("sum_v should agree: %+v", got)
	}
	if got := byName["mismatched"]; len(got.Disagreeing) != 1 {
		t.Errorf("mismatched should split: %+v", got)
	}
	if got := byName["text_only"]; len(got.Failed) != 1 || len(got.Agreeing) != 1 {
		t.Errorf("text_only: scidb should fail, accumulo answer: %+v", got)
	}
	if _, err := p.ProbeCommonSemantics(nil); err == nil {
		t.Error("no tasks should fail")
	}
}

func TestQueryAutoRoutesToFastestIsland(t *testing.T) {
	p := demoStore(t)
	if _, err := p.Cast("wf", EnginePostgres, CastOptions{TargetName: "wf_pg"}); err != nil {
		t.Fatal(err)
	}
	task := AutoTask{
		Name:  "wf_sum",
		Class: monitor.ClassSQLAnalytics,
		Candidates: map[Island]string{
			IslandPostgres: `SELECT SUM(v) AS s FROM wf_pg`,
			IslandSciDB:    `aggregate(wf, sum(v))`,
		},
	}
	// First two calls probe both candidates.
	seen := map[Island]bool{}
	for i := 0; i < 2; i++ {
		rel, res, err := p.QueryAuto(task)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason != "probing" {
			t.Errorf("call %d should probe, got %q", i, res.Reason)
		}
		if rel.Tuples[0][0].AsFloat() != 14 {
			t.Errorf("wrong answer from %s: %v", res.Island, rel.Tuples[0][0])
		}
		seen[res.Island] = true
	}
	if len(seen) != 2 {
		t.Fatalf("probing should cover both islands: %v", seen)
	}
	// Subsequent calls route by observed latency and stay correct.
	for i := 0; i < 3; i++ {
		rel, res, err := p.QueryAuto(task)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason != "lowest observed latency" {
			t.Errorf("post-probe reason: %q", res.Reason)
		}
		if rel.Tuples[0][0].AsFloat() != 14 {
			t.Errorf("wrong routed answer: %v", rel.Tuples[0][0])
		}
	}
	if _, _, err := p.QueryAuto(AutoTask{Name: "x"}); err == nil {
		t.Error("no candidates should fail")
	}
}

func TestQueryAutoRespectsBias(t *testing.T) {
	// Seed the monitor so one island looks much faster; routing must
	// follow the observations.
	p := demoStore(t)
	if _, err := p.Cast("wf", EnginePostgres, CastOptions{TargetName: "wf_pg"}); err != nil {
		t.Fatal(err)
	}
	p.Monitor.Record("biased", monitor.ClassSQLAnalytics, string(IslandSciDB), 1)
	p.Monitor.Record("biased", monitor.ClassSQLAnalytics, string(IslandPostgres), 1_000_000_000)
	task := AutoTask{
		Name:  "biased",
		Class: monitor.ClassSQLAnalytics,
		Candidates: map[Island]string{
			IslandPostgres: `SELECT COUNT(*) FROM wf_pg`,
			IslandSciDB:    `aggregate(wf, count(v))`,
		},
	}
	_, res, err := p.QueryAuto(task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Island != IslandSciDB {
		t.Errorf("routing ignored observations: %+v", res)
	}
}
