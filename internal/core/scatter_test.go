package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/shard"
)

// localShard adapts an in-process polystore to ShardEndpoint, so the
// scatter executor can be exercised without a network. The BDWQ client
// satisfies the same interface; the TCP topology is covered by the
// server integration tests.
type localShard struct{ p *Polystore }

func (e localShard) Query(ctx context.Context, q string) (*engine.Relation, error) {
	return e.p.QueryCtx(ctx, q)
}

// scatterFixture is a baseline polystore holding the unsharded table
// plus a coordinator whose copy of the same table is partitioned across
// in-process shard polystores.
type scatterFixture struct {
	baseline *Polystore
	coord    *Polystore
	shards   []*Polystore
}

func scatterTable() *engine.Relation {
	rel := engine.NewRelation(engine.Schema{Columns: []engine.Column{
		engine.Col("c0", engine.TypeInt),
		engine.Col("c1", engine.TypeInt),
		engine.Col("c2", engine.TypeString),
		engine.Col("c3", engine.TypeFloat),
	}})
	groups := []string{"a", "b", "c"}
	for i := 0; i < 37; i++ {
		v3 := engine.NewFloat(float64(i) * 1.5)
		if i%7 == 0 {
			v3 = engine.Null
		}
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i)),
			engine.NewInt(int64((i * 13) % 50)),
			engine.NewString(groups[i%len(groups)]),
			v3,
		})
	}
	return rel
}

func newScatterFixture(t *testing.T, spec shard.Spec) *scatterFixture {
	t.Helper()
	rel := scatterTable()
	fx := &scatterFixture{baseline: New(), coord: New()}
	if err := fx.baseline.Load(EnginePostgres, "st", rel, CastOptions{}); err != nil {
		t.Fatalf("baseline load: %v", err)
	}
	parts, err := shard.Split(rel, spec)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	eps := make([]ShardEndpoint, len(parts))
	idx := make([]int, len(parts))
	for i, part := range parts {
		sp := New()
		if err := sp.Load(EnginePostgres, "st", part, CastOptions{}); err != nil {
			t.Fatalf("shard %d load: %v", i, err)
		}
		fx.shards = append(fx.shards, sp)
		eps[i] = localShard{sp}
		idx[i] = i
	}
	fx.coord.SetShardEndpoints(eps...)
	if err := fx.coord.RegisterSharded("st", spec, rel.Schema, idx...); err != nil {
		t.Fatalf("register sharded: %v", err)
	}
	return fx
}

// canonOrdered renders a relation order-sensitively: scatter-gather
// promises not just the same rows but the same row order as the
// unsharded baseline (downstream array casts derive coordinates from
// row position).
func canonOrdered(rel *engine.Relation) string {
	var sb strings.Builder
	for _, c := range rel.Schema.Columns {
		fmt.Fprintf(&sb, "%s:%v|", strings.ToLower(c.Name), c.Type)
	}
	for _, row := range rel.Tuples {
		sb.WriteByte('\n')
		for _, v := range row {
			fmt.Fprintf(&sb, "%d:%s\x1f", v.Kind, v.String())
		}
	}
	return sb.String()
}

var scatterQueries = []string{
	// Pushdown-eligible plain shapes.
	"RELATIONAL(SELECT * FROM st)",
	"RELATIONAL(SELECT c0, c2 FROM st WHERE c1 > 25)",
	"RELATIONAL(SELECT c0 AS id, c1 + 1 FROM st WHERE c2 = 'a')",
	"POSTGRES(SELECT * FROM st WHERE c3 IS NULL)",
	"RELATIONAL(SELECT * FROM CAST(st, relation) WHERE c1 BETWEEN 10 AND 40)",
	// Pushdown-eligible aggregates (partial-state merge).
	"RELATIONAL(SELECT COUNT(*) AS n FROM st)",
	"RELATIONAL(SELECT COUNT(*) AS n, SUM(c1) AS s, MIN(c1) AS lo, MAX(c1) AS hi FROM st)",
	"RELATIONAL(SELECT SUM(c3) AS s, MIN(c3) AS lo FROM st)",
	"RELATIONAL(SELECT c2, COUNT(*) AS n, SUM(c3) AS s FROM st GROUP BY c2)",
	"RELATIONAL(SELECT c2, MIN(c1) FROM st WHERE c0 > 3 GROUP BY c2)",
	// Gather-fallback shapes.
	"RELATIONAL(SELECT c0 FROM st ORDER BY c1, c0)",
	"RELATIONAL(SELECT DISTINCT c2 FROM st)",
	"RELATIONAL(SELECT AVG(c1) AS a, STDDEV(c1) AS sd FROM st)",
	"RELATIONAL(SELECT c2, COUNT(*) AS n FROM st GROUP BY c2 HAVING COUNT(*) > 10)",
	"RELATIONAL(SELECT c0, c1 FROM st ORDER BY c0 LIMIT 5)",
	"RELATIONAL(SELECT COUNT(DISTINCT c2) AS n FROM st)",
	"RELATIONAL(SELECT a.c0, b.c1 FROM st a JOIN st b ON a.c0 = b.c0 WHERE b.c1 < 20)",
}

func scatterSpecs() map[string]shard.Spec {
	return map[string]shard.Spec{
		"hash1":      shard.HashSpec("c0", 1),
		"hash2":      shard.HashSpec("c0", 2),
		"hash4":      shard.HashSpec("c2", 4), // string key, few distinct values
		"range3":     shard.RangeSpec("c1", engine.NewInt(15), engine.NewInt(35)),
		"rangeEmpty": shard.RangeSpec("c1", engine.NewInt(20), engine.NewInt(1000)), // last shard empty
	}
}

// TestScatterEquivalence pins sharded ≡ unsharded — same rows, same
// order, same schema — across pushdown and fallback shapes, shard
// counts, and an empty shard.
func TestScatterEquivalence(t *testing.T) {
	for specName, spec := range scatterSpecs() {
		t.Run(specName, func(t *testing.T) {
			fx := newScatterFixture(t, spec)
			for _, q := range scatterQueries {
				want, werr := fx.baseline.Query(q)
				got, gerr := fx.coord.Query(q)
				if (werr != nil) != (gerr != nil) {
					t.Fatalf("%s: baseline err=%v sharded err=%v", q, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if canonOrdered(got) != canonOrdered(want) {
					t.Errorf("%s:\nsharded:  %s\nbaseline: %s", q, canonOrdered(got), canonOrdered(want))
				}
			}
		})
	}
}

// TestScatterDumpAndCast pins the universal egress paths: Dump gathers
// a sharded object in original order, and CAST gathers then migrates,
// leaving no temp objects behind.
func TestScatterDumpAndCast(t *testing.T) {
	fx := newScatterFixture(t, shard.HashSpec("c0", 3))
	want, err := fx.baseline.Dump("st")
	if err != nil {
		t.Fatalf("baseline dump: %v", err)
	}
	got, err := fx.coord.Dump("st")
	if err != nil {
		t.Fatalf("sharded dump: %v", err)
	}
	if canonOrdered(got) != canonOrdered(want) {
		t.Fatalf("dump mismatch:\nsharded:  %s\nbaseline: %s", canonOrdered(got), canonOrdered(want))
	}

	before := len(fx.coord.Objects())
	res, err := fx.coord.Cast("st", EnginePostgres, CastOptions{})
	if err != nil {
		t.Fatalf("cast: %v", err)
	}
	if res.Object != "st" {
		t.Fatalf("cast result object = %q, want st", res.Object)
	}
	copyRel, err := fx.coord.Dump(res.Target)
	if err != nil {
		t.Fatalf("dump cast copy: %v", err)
	}
	if canonOrdered(copyRel) != canonOrdered(want) {
		t.Fatalf("cast copy mismatch")
	}
	// Exactly one new object — the named cast copy; any extra would be
	// a leaked gather temp.
	defer fx.coord.dropTempObjects([]string{res.Target})
	if n := len(fx.coord.Objects()); n != before+1 {
		t.Fatalf("temp objects leaked: %d -> %d (want exactly the cast target added)", before, n)
	}
}

// failingShard errors on every query.
type failingShard struct{ err error }

func (e failingShard) Query(context.Context, string) (*engine.Relation, error) {
	return nil, e.err
}

// TestScatterShardFailure pins the typed partial-failure contract: when
// one shard fails, both execution paths surface a *ShardFailure naming
// the object and shard, for queries and for Dump/CAST.
func TestScatterShardFailure(t *testing.T) {
	spec := shard.HashSpec("c0", 3)
	fx := newScatterFixture(t, spec)
	boom := errors.New("shard down")
	eps := []ShardEndpoint{localShard{fx.shards[0]}, failingShard{boom}, localShard{fx.shards[2]}}
	fx.coord.SetShardEndpoints(eps...)

	for _, q := range []string{
		"RELATIONAL(SELECT * FROM st)",              // pushdown plain
		"RELATIONAL(SELECT COUNT(*) AS n FROM st)",  // pushdown aggregate
		"RELATIONAL(SELECT c0 FROM st ORDER BY c0)", // gather fallback
		"RELATIONAL(SELECT DISTINCT c2 FROM st)",    // gather fallback
	} {
		_, err := fx.coord.Query(q)
		sf, ok := IsShardFailure(err)
		if !ok {
			t.Fatalf("%s: err = %v, want *ShardFailure", q, err)
		}
		if sf.Object != "st" || sf.Shard != 1 || !errors.Is(err, boom) {
			t.Fatalf("%s: failure = %+v, want object st shard 1 wrapping boom", q, sf)
		}
	}
	if _, err := fx.coord.Dump("st"); !errors.Is(err, boom) {
		t.Fatalf("dump err = %v, want boom", err)
	}
	if _, err := fx.coord.Cast("st", EnginePostgres, CastOptions{}); !errors.Is(err, boom) {
		t.Fatalf("cast err = %v, want boom", err)
	}
}

// TestScatterCancellation: a cancelled context fails the fan-out with
// a ShardFailure wrapping context.Canceled rather than hanging.
func TestScatterCancellation(t *testing.T) {
	fx := newScatterFixture(t, shard.HashSpec("c0", 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fx.coord.QueryCtx(ctx, "RELATIONAL(SELECT * FROM st)")
	if err == nil {
		t.Fatal("cancelled scatter query succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRegisterShardedValidation pins the registration contract.
func TestRegisterShardedValidation(t *testing.T) {
	p := New()
	schema := engine.Schema{Columns: []engine.Column{engine.Col("k", engine.TypeInt)}}
	spec := shard.HashSpec("k", 2)
	if err := p.RegisterSharded("t", spec, schema, 0, 1); err == nil {
		t.Fatal("registered with no endpoints installed")
	}
	p.SetShardEndpoints(failingShard{}, failingShard{})
	if err := p.RegisterSharded("t", shard.HashSpec("missing", 2), schema, 0, 1); err == nil {
		t.Fatal("registered with key not in schema")
	}
	if err := p.RegisterSharded("t", spec, schema, 0); err == nil {
		t.Fatal("registered with wrong endpoint count")
	}
	bad := engine.Schema{Columns: []engine.Column{
		engine.Col("k", engine.TypeInt), engine.Col(shard.GposColumn, engine.TypeInt),
	}}
	if err := p.RegisterSharded("t", spec, bad, 0, 1); err == nil {
		t.Fatal("registered with reserved column in schema")
	}
	if err := p.RegisterSharded("t", spec, schema, 0, 1); err != nil {
		t.Fatalf("valid registration failed: %v", err)
	}
	if err := p.RegisterSharded("T", spec, schema, 0, 1); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	if _, ok := p.PlacementOf("t"); !ok {
		t.Fatal("placement missing after registration")
	}
	p.DeregisterSharded("t")
	if _, ok := p.PlacementOf("t"); ok {
		t.Fatal("placement present after deregistration")
	}
}
