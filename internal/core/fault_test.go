package core

// Directed fault-tolerance tests: cancellation of in-flight casts,
// pipe-goroutine lifecycle, atomic rollback at every failpoint, and
// the transient-fault retry loop. The randomized counterpart lives in
// chaos_test.go.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// waitGoroutines waits for the goroutine count to settle back to (or
// below) base+slack, failing with a full stack dump if it does not
// within two seconds — the leak detector for pipe goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d at start, %d after settle\n%s",
		base, runtime.NumGoroutine(), buf[:n])
}

// bigStore builds a polystore holding one registered 100k-row table.
func bigStore(t *testing.T, rows int) *Polystore {
	t.Helper()
	p := New()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	rel.Tuples = make([]engine.Tuple, rows)
	for i := range rel.Tuples {
		rel.Tuples[i] = engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(float64(i) / 3)}
	}
	if err := p.Load(EnginePostgres, "big", rel, CastOptions{}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCastCancellation proves cancelling an in-flight 100k-row cast
// returns promptly (well within the acceptance window), surfaces the
// context's error, leaves no goroutine behind and no partial state.
func TestCastCancellation(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	base := runtime.NumGoroutine()
	p := bigStore(t, 100_000)
	before := snapshotPolystore(t, p)

	// Slow the encoder to ~5ms per wire frame so the deadline lands
	// mid-stream (a 100k-row cast spans ~25 frames).
	fault.Arm(fault.Spec{Point: engine.FpEncodeFrame, Mode: fault.ModeDelay,
		Delay: 5 * time.Millisecond, Times: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := p.CastCtx(ctx, "big", EnginePostgres, CastOptions{})
	elapsed := time.Since(start)
	fault.Reset()

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled cast returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled cast took %v to return — teardown is not prompt", elapsed)
	}
	if after := snapshotPolystore(t, p); after != before {
		t.Fatalf("cancelled cast changed polystore state\nbefore:\n%s\nafter:\n%s", before, after)
	}
	waitGoroutines(t, base)
}

// TestPipeGoroutineLifecycle loops decode-error and cancellation casts
// and asserts every encoder/decoder goroutine exits — the pipe leak
// test of the issue's first satellite.
func TestPipeGoroutineLifecycle(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	base := runtime.NumGoroutine()
	p := bigStore(t, 60_000) // over parallelCastRows: the parallel decoder runs too

	t.Run("mid-stream decode errors", func(t *testing.T) {
		for i := 0; i < 20; i++ {
			fault.Reset()
			fault.Arm(fault.Spec{Point: engine.FpDecodeFrame, Mode: fault.ModeError, After: 1})
			if _, err := p.Cast("big", EnginePostgres, CastOptions{}); err == nil {
				t.Fatal("cast with injected decode error succeeded")
			}
		}
		fault.Reset()
		waitGoroutines(t, base)
	})
	t.Run("cancellation mid-encode", func(t *testing.T) {
		for i := 0; i < 20; i++ {
			fault.Reset()
			fault.Arm(fault.Spec{Point: engine.FpEncodeFrame, Mode: fault.ModeDelay,
				Delay: 2 * time.Millisecond, Times: -1})
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			if _, err := p.CastCtx(ctx, "big", EnginePostgres, CastOptions{}); err == nil {
				t.Fatal("cancelled cast succeeded")
			}
			cancel()
		}
		fault.Reset()
		waitGoroutines(t, base)
	})
}

// TestCastAtomicRollback injects a permanent fault at every pipeline
// failpoint, for every target engine shape, and asserts the cast fails
// with the injected fault in its chain while the catalog and all
// engines stay byte-identical — no staged or half-loaded leftovers.
func TestCastAtomicRollback(t *testing.T) {
	defer fault.Reset()
	for _, target := range []EngineKind{EnginePostgres, EngineSciDB, EngineAccumulo} {
		for _, point := range CastFailpoints() {
			t.Run(fmt.Sprintf("%s/%s", target, point), func(t *testing.T) {
				fault.Reset()
				p := demoStore(t)
				before := snapshotPolystore(t, p)
				fault.Arm(fault.Spec{Point: point, Mode: fault.ModeError, Times: -1})
				_, err := p.Cast("patients", target, CastOptions{})
				fault.Reset()
				if err == nil {
					t.Fatalf("cast to %s with %s armed succeeded", target, point)
				}
				var fe *fault.Error
				if !errors.As(err, &fe) {
					t.Fatalf("cast error does not chain the injected fault: %v", err)
				}
				if after := snapshotPolystore(t, p); after != before {
					t.Fatalf("failed cast changed polystore state\nbefore:\n%s\nafter:\n%s", before, after)
				}
			})
		}
	}
}

// wireHeaderLen computes the v2 stream header length for a schema —
// magic, column count, per-column descriptors, declared tuple count —
// so partial-write specs can truncate exactly at the first frame
// header.
func wireHeaderLen(s engine.Schema) int {
	n := 8
	for _, c := range s.Columns {
		n += 3 + len(c.Name)
	}
	return n + 8
}

// TestCastPartialWriteRollback truncates the wire stream exactly at
// (and just inside) the first frame header — the shape a crashed
// writer leaves — and asserts a clean chained error with full
// rollback, no panic.
func TestCastPartialWriteRollback(t *testing.T) {
	defer fault.Reset()
	p := demoStore(t)
	rel, err := p.Dump("patients")
	if err != nil {
		t.Fatal(err)
	}
	hdr := wireHeaderLen(rel.Schema)
	for _, cut := range []int{hdr, hdr + 4, hdr + 8} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			fault.Reset()
			before := snapshotPolystore(t, p)
			fault.Arm(fault.Spec{Point: FpCastPipe, Mode: fault.ModePartialWrite,
				After: cut, Times: -1})
			_, err := p.Cast("patients", EnginePostgres, CastOptions{})
			fault.Reset()
			if err == nil {
				t.Fatal("cast over a truncated pipe succeeded")
			}
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Fatalf("truncation error does not chain the injected fault: %v", err)
			}
			if after := snapshotPolystore(t, p); after != before {
				t.Fatalf("truncated cast changed polystore state\nbefore:\n%s\nafter:\n%s", before, after)
			}
		})
	}
}

// TestCastRetryTransient arms a one-shot transient fault and asserts
// the retry loop absorbs it: the cast succeeds on the second attempt,
// reports exactly one retry, and lands a copy identical to the source.
func TestCastRetryTransient(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	p := demoStore(t)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
	fault.Arm(fault.Spec{Point: engine.FpEncodeFrame, Mode: fault.ModeError, Transient: true})

	res, err := p.Cast("patients", EnginePostgres, CastOptions{})
	fault.Reset()
	if err != nil {
		t.Fatalf("transient fault not absorbed by retry: %v", err)
	}
	defer p.dropTempObjects([]string{res.Target})
	if res.Retries != 1 {
		t.Errorf("CastResult.Retries = %d, want 1", res.Retries)
	}
	if got := p.RetryStats(); got != 1 {
		t.Errorf("RetryStats = %d, want 1", got)
	}
	src, _ := p.Dump("patients")
	copied, err := p.Dump(res.Target)
	if err != nil {
		t.Fatalf("dump retried copy: %v", err)
	}
	if canonRelation(src) != canonRelation(copied) {
		t.Error("retried cast landed a copy that differs from the source")
	}
}

// TestCastRetryExhaustion arms a transient fault that outlives the
// retry budget and asserts the cast fails cleanly after spending it.
func TestCastRetryExhaustion(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	p := demoStore(t)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
	before := snapshotPolystore(t, p)
	fault.Arm(fault.Spec{Point: FpCastLoad, Mode: fault.ModeError, Transient: true, Times: -1})
	res, err := p.Cast("patients", EnginePostgres, CastOptions{})
	fault.Reset()
	if err == nil {
		t.Fatal("cast under a persistent fault succeeded")
	}
	if !IsTransientError(err) {
		t.Errorf("exhausted retry should surface the transient fault, got %v", err)
	}
	if res.Retries != 1 {
		t.Errorf("CastResult.Retries = %d, want 1 (MaxAttempts 2)", res.Retries)
	}
	if after := snapshotPolystore(t, p); after != before {
		t.Fatalf("exhausted cast changed polystore state\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestZeroMatchRecastCountsRetry re-pins the planner's zero-match
// SciDB fallback (PR 5) now routed through the retry policy: the
// recast waits one backoff step and shows up in RetryStats.
func TestZeroMatchRecastCountsRetry(t *testing.T) {
	p := demoStore(t)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond})
	rel, err := p.Query("ARRAY(filter(CAST(patients, array), age > 1000))")
	if err != nil {
		t.Fatalf("zero-match query must succeed via full-migration fallback: %v", err)
	}
	if rel.Len() != 0 {
		t.Errorf("zero-match filter returned %d rows, want 0", rel.Len())
	}
	if got := p.RetryStats(); got != 1 {
		t.Errorf("RetryStats = %d, want 1 (the fallback recast)", got)
	}
}
