package core

import (
	"context"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// This file closes the paper's §2.1 monitoring loop and exposes the
// trace machinery as EXPLAIN ANALYZE: every successful QueryCtx call is
// classified into a monitor.QueryClass and recorded against the catalog
// objects it touched, so placement advice derives from live traffic;
// and any query can be run under a trace whose span tree renders as a
// per-stage latency report.

// classifyBody buckets a query into the capability it exercises — the
// heuristic mirror of the paper's query classes. The signal is the
// island (degenerate islands pin the class) plus the body's keywords:
// aggregation or joins mean analytics, array math means linear algebra,
// search means text, anything else is a lookup.
func classifyBody(island Island, body string) monitor.QueryClass {
	switch island {
	case IslandSStore:
		return monitor.ClassStreaming
	case IslandD4M:
		return monitor.ClassLinearAlgebra
	case IslandAccumulo:
		if containsWord(body, "search") || containsWord(body, "searchscan") {
			return monitor.ClassTextSearch
		}
		return monitor.ClassLookup
	case IslandArray, IslandSciDB:
		for _, op := range []string{"multiply", "regrid", "window", "fft", "transpose"} {
			if containsWord(body, op) {
				return monitor.ClassLinearAlgebra
			}
		}
		if containsWord(body, "aggregate") {
			return monitor.ClassSQLAnalytics
		}
		return monitor.ClassLookup
	case IslandRelational, IslandPostgres, IslandMyria:
		for _, kw := range []string{"join", "group", "count", "sum", "avg", "min", "max"} {
			if containsWord(body, kw) {
				return monitor.ClassSQLAnalytics
			}
		}
		return monitor.ClassLookup
	default:
		return monitor.ClassLookup
	}
}

// islandEngine names the engine that serves an island's queries — the
// engine a monitor observation is attributed to.
func islandEngine(island Island) EngineKind {
	switch island {
	case IslandRelational, IslandPostgres, IslandMyria:
		return EnginePostgres
	case IslandArray, IslandSciDB:
		return EngineSciDB
	case IslandAccumulo, IslandD4M:
		return EngineAccumulo
	case IslandSStore:
		return EngineSStore
	default:
		return EnginePostgres
	}
}

// monitorWildcard is the object name federation-wide observations are
// recorded under when a query references no catalog object (DDL,
// literals-only selects). It keeps the acceptance invariant simple:
// every successful QueryCtx yields at least one observation.
const monitorWildcard = "*"

// observeQuery feeds the monitor one (object, class, engine, latency)
// observation per catalog object the body references — executed on the
// island's serving engine — or a single federation-wide observation
// when it references none.
func (p *Polystore) observeQuery(island Island, class monitor.QueryClass, body string, elapsed time.Duration) {
	eng := string(islandEngine(island))
	matched := false
	for _, obj := range p.Objects() {
		if !containsWord(body, obj.Name) {
			continue
		}
		p.Monitor.Record(obj.Name, class, eng, elapsed)
		matched = true
	}
	if !matched {
		p.Monitor.Record(monitorWildcard, class, eng, elapsed)
	}
}

// ExplainAnalyze executes the query under a fresh trace and returns the
// rendered span tree alongside the result — per-stage durations, cast
// wire bytes, rows scanned vs moved, retry attempts and the planner's
// pushdown decision, the polystore's EXPLAIN ANALYZE. The report is
// returned even when the query errors, so failed queries can be
// diagnosed from their partial tree.
func (p *Polystore) ExplainAnalyze(ctx context.Context, q string) (string, *engine.Relation, error) {
	ctx, root := trace.New(ctx, "explain")
	rel, err := p.QueryCtx(ctx, q)
	root.End()
	report := root
	if kids := root.Children(); len(kids) == 1 {
		report = kids[0] // the query span is the whole story
	}
	var sb strings.Builder
	sb.WriteString(report.String())
	if err != nil {
		sb.WriteString("error: " + err.Error() + "\n")
	}
	return sb.String(), rel, err
}
