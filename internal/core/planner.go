package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/relational"
)

// The cross-island CAST pushdown planner. resolveCasts (islands.go)
// migrates every CAST source wholesale and lets the island body filter
// and project afterwards; the planner here rewrites the query *before*
// migration so the CAST moves only the rows and columns the body can
// observe:
//
//	RELATIONAL/POSTGRES — the body's WHERE conjuncts that reference only
//	    the cast object translate into a source-side predicate, and the
//	    set of referenced columns becomes a source-side projection.
//	ARRAY/SCIDB — filter(CAST(x, array), cond) pushes cond into the
//	    migration; the source evaluates it natively (relational sources
//	    on the vectorized column kernels, array sources via filter()).
//	TEXT — scan(CAST(x, text), 'lo', 'hi') and get(CAST(x, text), 'r')
//	    push the row range down as a predicate on the row-key column.
//
// Pushdown is a strict pre-filter: the island body still applies its
// own predicate to the migrated copy, so every pushed conjunct must be
// row-deterministic and evaluable at the source without changing
// semantics — the analysis below refuses anything else and falls back
// to full migration. Polystore.SetPushdown(false) disables the planner
// entirely (the randomized equivalence harness diffs the two paths).

// maxCastsPerQuery bounds CAST terms per body, matching resolveCasts'
// depth guard.
const maxCastsPerQuery = 32

// prepareBody resolves the CAST terms of an island body, with pushdown
// when the planner understands the island's dialect. It returns the
// rewritten body plus the temp object names minted along the way; the
// caller must drop them once the query completes (temps are returned
// even alongside an error, so partial work is still reclaimed).
func (p *Polystore) prepareBody(ctx context.Context, island Island, body string) (string, []string, error) {
	if !p.pushdownOn() {
		return p.resolveCasts(ctx, body)
	}
	switch island {
	case IslandRelational, IslandPostgres:
		return p.planRelational(ctx, body)
	case IslandArray, IslandSciDB:
		return p.planArray(ctx, body)
	case IslandAccumulo:
		return p.planText(ctx, body)
	default:
		return p.resolveCasts(ctx, body)
	}
}

// pendingCast is one CAST term lifted out of a body, awaiting
// execution under a minted placeholder name.
type pendingCast struct {
	placeholder string
	src         string // named object, or a nested island query
	target      EngineKind
	nested      bool
	nestedRel   *engine.Relation // nested source, already executed
	schema      engine.Schema    // source schema (pre-projection)
	known       bool
}

// extractCasts rewrites every CAST(src, target) in body to a fresh
// placeholder identifier, returning the rewritten body and the pending
// casts. Nested island-query sources are executed here (their schema is
// needed for analysis and they must run exactly once).
func (p *Polystore) extractCasts(ctx context.Context, body string) (string, []*pendingCast, error) {
	var pend []*pendingCast
	from := 0
	for {
		start, end, ok := findCall(body, "CAST", from)
		if !ok {
			return body, pend, nil
		}
		if len(pend) >= maxCastsPerQuery {
			// Error before touching the over-limit term: its source may be
			// a nested island query, and a rejected statement must not run
			// migrations the planner-off path would never start.
			return body, pend, fmt.Errorf("core: too many nested CASTs")
		}
		inner := body[start+len("CAST(") : end-1]
		args := splitTopArgs(inner)
		if len(args) != 2 {
			return body, pend, fmt.Errorf("core: CAST takes (object, target), got %q", inner)
		}
		target, err := castTargetEngine(args[1])
		if err != nil {
			return body, pend, err
		}
		pc := &pendingCast{placeholder: p.tempName("cast"), target: target, src: strings.TrimSpace(args[0])}
		if looksLikeIslandQuery(pc.src) {
			rel, err := p.QueryCtx(ctx, pc.src)
			if err != nil {
				return body, pend, err
			}
			pc.nested, pc.nestedRel, pc.schema, pc.known = true, rel, rel.Schema, true
		} else if info, ok := p.Lookup(pc.src); ok {
			pc.schema, pc.known = p.objectSchema(info)
		}
		pend = append(pend, pc)
		body = body[:start] + pc.placeholder + body[end:]
		from = start + len(pc.placeholder)
	}
}

// runCast executes one pending cast with the given pushdown options,
// registering the copy under the placeholder. It returns the temp name
// for cleanup (minted regardless of success, so callers always reclaim).
func (p *Polystore) runCast(ctx context.Context, pc *pendingCast, opts CastOptions) (string, error) {
	opts.TargetName = pc.placeholder
	if !pc.nested {
		_, err := p.CastCtx(ctx, pc.src, pc.target, opts)
		return pc.placeholder, err
	}
	// Nested sources only ever carry pushdown into relation-shaped
	// targets (see planRelational), where raw-row filtering is faithful.
	rel, err := filterProjectRelation(pc.nestedRel, opts.Predicate, opts.Columns)
	if err != nil {
		return pc.placeholder, err
	}
	if err := p.LoadCtx(ctx, pc.target, pc.placeholder, rel, CastOptions{Dense: opts.Dense}); err != nil {
		return pc.placeholder, err
	}
	p.countCast(rel != pc.nestedRel) // nested casts count in CastStats too
	return pc.placeholder, nil
}

// ---------- RELATIONAL / POSTGRES island ----------

// planRelational plans CAST pushdown for a SQL body: extract the CAST
// terms, parse the rewritten statement, and derive a per-cast predicate
// and projection from the SELECT's own clauses. Bodies the planner
// cannot analyse (DML, parse errors) migrate their casts in full.
func (p *Polystore) planRelational(ctx context.Context, body string) (string, []string, error) {
	if _, _, ok := findCall(body, "CAST", 0); !ok {
		return body, nil, nil // no CASTs; shims get their own pushdown
	}
	rewritten, pend, err := p.extractCasts(ctx, body)
	var temps []string
	if err != nil {
		return rewritten, temps, err
	}
	var sel *relational.Select
	if stmt, perr := relational.Parse(rewritten); perr == nil {
		sel, _ = stmt.(*relational.Select)
	}
	var tables []pdTable
	if sel != nil {
		tables = p.analyzeTables(sel, pend)
	}
	for _, pc := range pend {
		opts := CastOptions{}
		// Pushdown only into relation-shaped targets: relation→relation is
		// the one per-row-faithful cast, so a body predicate over the
		// source's columns means the same thing on either side of the
		// wire. Array-, kv- and tiledb-shaped targets rebuild their copy
		// (dims coerced, collisions overwritten, cells exploded) and then
		// shim back with a transformed schema — the body's predicate is
		// not a predicate over the source rows, so those casts migrate in
		// full and the body does all its filtering after the move.
		if ti := tableIndexOf(tables, pc.placeholder); ti >= 0 && pc.known && pc.target == EnginePostgres {
			opts.Predicate, opts.Columns = computePushdown(sel, tables, ti)
		}
		tmp, err := p.runCast(ctx, pc, opts)
		temps = append(temps, tmp)
		if err != nil {
			return rewritten, temps, err
		}
	}
	return rewritten, temps, nil
}

// pdTable is one FROM/JOIN table as the pushdown analysis sees it.
type pdTable struct {
	name       string // lower-cased table name as written
	alias      string // lower-cased alias (table name when unaliased)
	schema     engine.Schema
	known      bool
	leftJoined bool // right side of a LEFT JOIN: no predicate pushdown
}

// analyzeTables resolves the schema of every table referenced by the
// SELECT: placeholders from their pending cast, everything else through
// the catalog or the relational engine itself.
func (p *Polystore) analyzeTables(sel *relational.Select, pend []*pendingCast) []pdTable {
	byPlaceholder := map[string]*pendingCast{}
	for _, pc := range pend {
		byPlaceholder[strings.ToLower(pc.placeholder)] = pc
	}
	add := func(ref relational.TableRef, left bool) pdTable {
		t := pdTable{name: strings.ToLower(ref.Name), alias: strings.ToLower(ref.Alias), leftJoined: left}
		if t.alias == "" {
			t.alias = t.name
		}
		if pc, ok := byPlaceholder[t.name]; ok {
			t.schema, t.known = pc.schema, pc.known
			return t
		}
		if info, ok := p.Lookup(ref.Name); ok {
			t.schema, t.known = p.objectSchema(info)
			return t
		}
		if s, err := p.Relational.TableSchema(ref.Name); err == nil {
			t.schema, t.known = s, true
		}
		return t
	}
	var tables []pdTable
	if sel.From != nil {
		tables = append(tables, add(*sel.From, false))
	}
	for _, j := range sel.Joins {
		tables = append(tables, add(j.Table, j.Kind == relational.JoinLeft))
	}
	return tables
}

func tableIndexOf(tables []pdTable, name string) int {
	name = strings.ToLower(name)
	for i, t := range tables {
		if t.name == name {
			return i
		}
	}
	return -1
}

// computePushdown derives the source-side predicate and projection for
// tables[ti] from the SELECT. The predicate is the AND of the WHERE
// conjuncts that provably reference only that table and cannot error on
// rows the island would never evaluate; the projection is the set of
// its columns referenced anywhere in the statement.
func computePushdown(sel *relational.Select, tables []pdTable, ti int) (string, []string) {
	target := &tables[ti]
	if !target.known {
		return "", nil
	}

	// Collect every expression and star in the statement.
	starAll := false
	starOf := map[string]bool{}
	var exprs []relational.Expr
	for _, item := range sel.Items {
		if item.Star {
			if item.Table == "" {
				starAll = true
			} else {
				starOf[strings.ToLower(item.Table)] = true
			}
			continue
		}
		exprs = append(exprs, item.Expr)
	}
	if sel.Where != nil {
		exprs = append(exprs, sel.Where)
	}
	if sel.Having != nil {
		exprs = append(exprs, sel.Having)
	}
	exprs = append(exprs, sel.GroupBy...)
	for _, o := range sel.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, j := range sel.Joins {
		if j.On != nil {
			exprs = append(exprs, j.On)
		}
	}

	// ownerOf attributes a column reference to a table index, or -1 when
	// attribution is uncertain (unknown schemas, ambiguity).
	allKnown := true
	for i := range tables {
		if !tables[i].known {
			allKnown = false
		}
	}
	ownerOf := func(cr relational.ColumnRef) int {
		if cr.Table != "" {
			q := strings.ToLower(cr.Table)
			for i := range tables {
				if tables[i].alias == q {
					return i
				}
			}
			return -1
		}
		if !allKnown {
			return -1
		}
		owner, hits := -1, 0
		for i := range tables {
			if tables[i].schema.Index(cr.Name) >= 0 {
				owner = i
				hits++
			}
		}
		if hits == 1 {
			return owner
		}
		return -1
	}

	// Projection: the target's columns referenced anywhere. Unqualified
	// names that *might* belong to the target are kept conservatively.
	var cols []string
	if !starAll && !starOf[target.alias] {
		needed := map[string]bool{}
		for _, e := range exprs {
			relational.WalkColumnRefs(e, func(cr relational.ColumnRef) {
				q := strings.ToLower(cr.Table)
				if q == target.alias || (q == "" && target.schema.Index(cr.Name) >= 0) {
					needed[strings.ToLower(cr.Name)] = true
				}
			})
		}
		for _, c := range target.schema.Columns {
			if needed[strings.ToLower(c.Name)] {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) == 0 && len(target.schema.Columns) > 0 {
			cols = []string{target.schema.Columns[0].Name} // keep cardinality
		}
		if len(cols) == len(target.schema.Columns) {
			cols = nil
		}
	}

	// Predicate: WHERE conjuncts wholly owned by the target.
	if target.leftJoined {
		return "", cols // padding semantics forbid pre-filtering
	}
	// Pushing a conjunct shrinks the set of rows (and join pairs) the
	// island evaluates the *remaining* WHERE and ON expressions on, so
	// every one of them must be unable to error: the baseline evaluates
	// `10 / t` on the t=0 row that a pushed `t <> 0` would have removed,
	// and planner-on must not succeed where planner-off raises. One
	// error-prone expression anywhere in WHERE or ON therefore disables
	// predicate pushdown for the whole statement (projection is
	// unaffected — it never removes rows).
	for _, c := range relational.SplitConjuncts(sel.Where) {
		if !errorFreeExpr(c) {
			return "", cols
		}
	}
	for _, j := range sel.Joins {
		if j.On != nil && !errorFreeExpr(j.On) {
			return "", cols
		}
	}
	var pushed []string
	for _, c := range relational.SplitConjuncts(sel.Where) {
		ok := true
		relational.WalkColumnRefs(c, func(cr relational.ColumnRef) {
			if ownerOf(cr) != ti || target.schema.Index(cr.Name) < 0 {
				ok = false
			}
		})
		if ok {
			pushed = append(pushed, relational.FormatExpr(relational.StripQualifiers(c)))
		}
	}
	return strings.Join(pushed, " AND "), cols
}

// errorFreeExpr reports whether the expression can be evaluated on any
// row without raising an error. The island evaluates WHERE with
// short-circuiting (a guard like `d <> 0 AND 10/d > 1` protects the
// division); a pushed conjunct is evaluated on *every* source row, so
// anything that can error — division, modulo, scalar function calls —
// stays behind.
func errorFreeExpr(e relational.Expr) bool {
	switch ex := e.(type) {
	case relational.Literal, relational.ColumnRef, nil:
		return true
	case relational.BinaryExpr:
		if ex.Op == "/" || ex.Op == "%" {
			return false
		}
		return errorFreeExpr(ex.Left) && errorFreeExpr(ex.Right)
	case relational.UnaryExpr:
		return errorFreeExpr(ex.Expr)
	case relational.InExpr:
		if !errorFreeExpr(ex.Expr) {
			return false
		}
		for _, a := range ex.List {
			if !errorFreeExpr(a) {
				return false
			}
		}
		return true
	case relational.IsNullExpr:
		return errorFreeExpr(ex.Expr)
	case relational.BetweenExpr:
		return errorFreeExpr(ex.Expr) && errorFreeExpr(ex.Lo) && errorFreeExpr(ex.Hi)
	default:
		return false // FuncCall and anything unknown
	}
}

// ---------- ARRAY / SCIDB island ----------

// domainSensitiveOps are AFL operators whose results depend on the
// array's dimension bounds, which a filtered load infers from the
// (pruned) data — pushdown would change them, so their presence
// anywhere in the body disables array pushdown.
var domainSensitiveOps = []string{"subarray", "regrid", "window", "multiply"}

// pushdownSafeArrayBody reports whether the AFL body is free of
// domain-sensitive operators. The check is lexical and deliberately
// conservative — the *word* appearing anywhere outside quotes disables
// pushdown, because the array engine's splitCall tolerates whitespace
// before the parenthesis (`subarray (x, ...)`) that a findCall-based
// probe would miss. aggregate is domain-free in its 2-arg form but its
// 3-arg form groups per domain position (empty groups included), so
// every aggregate occurrence must be locatable and confirmed 2-arg.
func pushdownSafeArrayBody(body string) bool {
	for _, op := range domainSensitiveOps {
		if containsWord(body, op) {
			return false
		}
	}
	occurrences := countWord(body, "aggregate")
	from := 0
	for n := 0; n < occurrences; n++ {
		start, end, ok := findCall(body, "aggregate", from)
		if !ok {
			return false // spaced or unbalanced call: arity unverifiable
		}
		if len(splitTopArgs(body[start+len("aggregate("):end-1])) != 2 {
			return false
		}
		from = end
	}
	return true
}

// planArray plans pushdown for AFL bodies: every filter(CAST(x, array),
// cond) whose condition translates to the source's columns executes the
// CAST as a filtered migration. The filter stays in the body (it is
// idempotent over the pre-filtered copy), so a condition the source
// cannot evaluate simply falls back to full migration.
func (p *Polystore) planArray(ctx context.Context, body string) (string, []string, error) {
	var temps []string
	pushdownSafe := pushdownSafeArrayBody(body)
	pushed := 0
	from := 0
	for guard := 0; pushdownSafe && guard < maxCastsPerQuery; guard++ {
		start, end, ok := findCall(body, "filter", from)
		if !ok {
			break
		}
		from = start + len("filter(")
		args := splitTopArgs(body[start+len("filter(") : end-1])
		if len(args) != 2 {
			continue
		}
		castArg := strings.TrimSpace(args[0])
		cs, ce, cok := findCall(castArg, "CAST", 0)
		if !cok || cs != 0 || ce != len(castArg) {
			continue
		}
		cargs := splitTopArgs(castArg[len("CAST(") : len(castArg)-1])
		if len(cargs) != 2 {
			continue // resolveCasts below reports the arity error
		}
		target, err := castTargetEngine(cargs[1])
		if err != nil || target != EngineSciDB {
			continue
		}
		src := strings.TrimSpace(cargs[0])
		if looksLikeIslandQuery(src) {
			continue // nested sources migrate in full
		}
		info, ok := p.Lookup(src)
		if !ok {
			continue
		}
		schema, ok := p.objectSchema(info)
		if !ok || len(schema.Columns) < 2 || schema.Columns[0].Type != engine.TypeInt {
			continue // a synthesized row-number dimension would renumber
		}
		cond, ok := translatableCondition(args[1], schema)
		if !ok {
			continue
		}
		// Execute the filtered cast and splice the placeholder over the
		// CAST term (the first CAST at or after the filter's position).
		bs, be, _ := findCall(body, "CAST", start)
		ph := p.tempName("cast")
		temps = append(temps, ph)
		if _, err := p.CastCtx(ctx, src, target, CastOptions{TargetName: ph, Predicate: cond}); err != nil {
			// A predicate matching zero rows cannot land (arrays cannot be
			// empty) and Cast reports it as an error; recast in full
			// instead — the body's own filter still prunes after the move.
			// The recast goes through the polystore's retry policy: it
			// waits one backoff step and counts in RetryStats, so the
			// fallback is governed and observable like any other retry.
			if ctx.Err() != nil {
				return body, temps, ctx.Err()
			}
			if serr := sleepCtx(ctx, p.retryPolicy().backoff(0)); serr != nil {
				return body, temps, serr
			}
			p.om.castRetries.Inc()
			if _, err2 := p.CastCtx(ctx, src, target, CastOptions{TargetName: ph}); err2 != nil {
				return body, temps, err2
			}
		}
		pushed++
		body = body[:bs] + ph + body[be:]
		from = bs + len(ph)
	}
	// Any remaining CAST terms (outside filter position, nested sources,
	// untranslatable conditions) migrate in full, on whatever is left of
	// the query's CAST budget — planned or not, exactly maxCastsPerQuery
	// terms resolve before the guard trips.
	rest, moreTemps, err := p.resolveCastsBudget(ctx, body, maxCastsPerQuery-pushed)
	return rest, append(temps, moreTemps...), err
}

// translatableCondition validates an island filter condition against
// the source schema, returning its canonical form. Every column it
// references must exist at the source (unqualified), and it must be
// aggregate-free; the evaluation set is identical pushed or not (the
// filter sees every migrated cell), so scalar functions are fine here.
func translatableCondition(cond string, schema engine.Schema) (string, bool) {
	e, err := relational.ParseExpression(cond)
	if err != nil || relational.HasAggregate(e) {
		return "", false
	}
	ok := true
	relational.WalkColumnRefs(e, func(cr relational.ColumnRef) {
		if cr.Table != "" || schema.Index(cr.Name) < 0 {
			ok = false
		}
	})
	if !ok {
		return "", false
	}
	return relational.FormatExpr(e), true
}

// ---------- TEXT island ----------

// planText plans pushdown for text-island bodies: scan(CAST(x, text),
// 'lo' [, 'hi']) and get(CAST(x, text), 'row') push the row range down
// as a predicate over the source's row-key column (its first column,
// which loadKV maps to the Accumulo row key).
func (p *Polystore) planText(ctx context.Context, body string) (string, []string, error) {
	cmd, args, err := parseCommand(body)
	if err != nil {
		return p.resolveCasts(ctx, body)
	}
	var lo, hi string
	switch {
	case cmd == "scan" && (len(args) == 2 || len(args) == 3):
		lo = unquote(args[1])
		if len(args) == 3 {
			hi = unquote(args[2])
		}
	case cmd == "get" && len(args) == 2:
		lo = unquote(args[1])
		hi = lo
	default:
		return p.resolveCasts(ctx, body)
	}
	castArg := strings.TrimSpace(args[0])
	cs, ce, cok := findCall(castArg, "CAST", 0)
	if !cok || cs != 0 || ce != len(castArg) || (lo == "" && hi == "") {
		return p.resolveCasts(ctx, body)
	}
	cargs := splitTopArgs(castArg[len("CAST(") : len(castArg)-1])
	if len(cargs) != 2 {
		return p.resolveCasts(ctx, body)
	}
	target, err := castTargetEngine(cargs[1])
	if err != nil || target != EngineAccumulo {
		return p.resolveCasts(ctx, body)
	}
	src := strings.TrimSpace(cargs[0])
	if looksLikeIslandQuery(src) {
		return p.resolveCasts(ctx, body)
	}
	info, ok := p.Lookup(src)
	if !ok {
		return p.resolveCasts(ctx, body)
	}
	schema, ok := p.objectSchema(info)
	if !ok || len(schema.Columns) == 0 || !plainIdent(schema.Columns[0].Name) {
		return p.resolveCasts(ctx, body)
	}
	pred := rowRangePredicate(schema.Columns[0].Name, lo, hi)

	bs, be, _ := findCall(body, "CAST", 0)
	ph := p.tempName("cast")
	temps := []string{ph}
	if _, err := p.CastCtx(ctx, src, target, CastOptions{TargetName: ph, Predicate: pred}); err != nil {
		return body, temps, err
	}
	// Any further CAST terms (e.g. inside the range arguments) resolve
	// in full against the remaining budget, exactly as planner-off would.
	rest, moreTemps, err := p.resolveCastsBudget(ctx, body[:bs]+ph+body[be:], maxCastsPerQuery-1)
	return rest, append(temps, moreTemps...), err
}

// rowRangePredicate renders the KV scan range [lo, hi] (empty = open)
// as a predicate on the row-key column. The KV engine compares the
// *stringified* key, which is exactly what engine.Compare does for
// mixed string/non-string operands, so the predicate agrees with the
// scan for every column type. A NULL key stringifies to "" — below any
// non-empty lower bound both ways, but an upper-bound-only range keeps
// it, hence the IS NULL escape.
func rowRangePredicate(col, lo, hi string) string {
	quote := func(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }
	switch {
	case lo != "" && hi != "":
		return fmt.Sprintf("%s >= %s AND %s <= %s", col, quote(lo), col, quote(hi))
	case lo != "":
		return fmt.Sprintf("%s >= %s", col, quote(lo))
	default:
		return fmt.Sprintf("%s <= %s OR %s IS NULL", col, quote(hi), col)
	}
}

// plainIdent reports whether s lexes as a single bare SQL identifier.
func plainIdent(s string) bool {
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isWordChar(s[i]) {
			return false
		}
	}
	return true
}

// ---------- shared plumbing ----------

// objectSchema reports the relation schema a Dump of the object would
// have, without materialising anything.
func (p *Polystore) objectSchema(info ObjectInfo) (engine.Schema, bool) {
	switch info.Engine {
	case EnginePostgres:
		s, err := p.Relational.TableSchema(info.Physical)
		return s, err == nil
	case EngineSciDB:
		a, err := p.ArrayStore.Get(info.Physical)
		if err != nil {
			return engine.Schema{}, false
		}
		return a.Schema(), true
	case EngineAccumulo:
		return kvResultRelation().Schema, true
	case EngineSStore:
		w, err := p.Streams.Window(info.Physical)
		if err != nil {
			return engine.Schema{}, false
		}
		cols := append([]engine.Column{engine.Col("ts", engine.TypeInt)}, w.Schema.Columns...)
		return engine.Schema{Columns: cols}, true
	case EngineTileDB:
		a, err := p.TileDBArray(info.Physical)
		if err != nil {
			return engine.Schema{}, false
		}
		nd := len(a.Domain.Lo)
		cols := make([]engine.Column, 0, nd+1)
		for i := 0; i < nd; i++ {
			cols = append(cols, engine.Col(fmt.Sprintf("d%d", i), engine.TypeInt))
		}
		cols = append(cols, engine.Col("v", engine.TypeFloat))
		return engine.Schema{Columns: cols}, true
	default:
		return engine.Schema{}, false
	}
}

// dropTempObjects deregisters query-scoped temp objects and removes
// their physical storage — the fix for the CAST temp leak: before this,
// every resolved CAST and shim left a copy behind in the catalog *and*
// the target engine, so long-running polystores grew without bound.
func (p *Polystore) dropTempObjects(names []string) {
	for _, name := range names {
		info, ok := p.Lookup(name)
		if !ok {
			continue
		}
		p.Deregister(name)
		switch info.Engine {
		case EnginePostgres:
			_ = p.Relational.DropTable(info.Physical)
		case EngineSciDB:
			_ = p.ArrayStore.Remove(info.Physical)
		case EngineAccumulo:
			_ = p.KV.DropTable(info.Physical)
		case EngineTileDB:
			p.mu.Lock()
			delete(p.tile, strings.ToLower(info.Physical))
			p.mu.Unlock()
		}
	}
}
