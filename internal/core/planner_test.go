package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
)

// bigTable registers a 6-column postgres table with n rows where
// column a cycles 0..99 (so `a < k` gives k% selectivity).
func bigTable(t testing.TB, p *Polystore, name string, n int) {
	t.Helper()
	schema := engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("a", engine.TypeInt),
		engine.Col("b", engine.TypeFloat), engine.Col("c", engine.TypeString),
		engine.Col("d", engine.TypeString), engine.Col("e", engine.TypeFloat),
	)
	rel := engine.NewRelation(schema)
	for i := 0; i < n; i++ {
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i)), engine.NewInt(int64(i % 100)),
			engine.NewFloat(float64(i) * 0.5), engine.NewString(fmt.Sprintf("name_%06d", i)),
			engine.NewString(strings.Repeat("x", 20)), engine.NewFloat(float64(i)),
		})
	}
	if err := p.Relational.InsertRelation(name, rel); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(name, EnginePostgres, name); err != nil {
		t.Fatal(err)
	}
}

func TestCastPredicateAndProjection(t *testing.T) {
	p := New()
	bigTable(t, p, "big", 1000)

	full, err := p.Cast("big", EnginePostgres, CastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Rows != 1000 || full.RowsScanned != 1000 {
		t.Fatalf("full cast: %+v", full)
	}
	pushed, err := p.Cast("big", EnginePostgres, CastOptions{
		Predicate: "a < 10", Columns: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pushed.Rows != 100 || pushed.RowsScanned != 1000 {
		t.Fatalf("pushed cast rows=%d scanned=%d", pushed.Rows, pushed.RowsScanned)
	}
	if pushed.Bytes*5 >= full.Bytes {
		t.Errorf("pushdown should move ≥5x fewer bytes: %d vs %d", pushed.Bytes, full.Bytes)
	}
	rel, err := p.Dump(pushed.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Schema.Columns) != 2 || !strings.EqualFold(rel.Schema.Columns[0].Name, "a") {
		t.Errorf("projected schema: %v", rel.Schema.Names())
	}
	for _, row := range rel.Tuples {
		if row[0].I >= 10 {
			t.Fatalf("predicate not applied: %v", row)
		}
	}
}

// The acceptance scenario: ≤10% selectivity, 2 of 6 columns referenced,
// 100k rows — pushdown must cut CastResult.Bytes by ≥5x.
func TestPushdownAcceptanceByteReduction(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 10_000
	}
	p := New()
	bigTable(t, p, "big", n)
	full, err := p.Cast("big", EnginePostgres, CastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := p.Cast("big", EnginePostgres, CastOptions{
		Predicate: "a < 10", Columns: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pushed.Rows*10 != full.Rows {
		t.Fatalf("selectivity off: %d of %d", pushed.Rows, full.Rows)
	}
	if pushed.Bytes*5 >= full.Bytes {
		t.Errorf("bytes: pushed %d vs full %d (want ≥5x reduction)", pushed.Bytes, full.Bytes)
	}
}

// The planner must produce the same rows the migrate-everything path
// produces, while registering a filtered CAST under the covers.
func TestPlannedQueryMatchesUnplanned(t *testing.T) {
	queries := []string{
		`RELATIONAL(SELECT name FROM CAST(wf, relation) w JOIN patients p ON w.t = p.id WHERE w.v > 0.5 ORDER BY name)`,
		`RELATIONAL(SELECT t, v FROM CAST(wf, relation) WHERE v > 1.5)`,
		`RELATIONAL(SELECT COUNT(*) AS n FROM CAST(wf, relation) WHERE v > 1.5 AND t < 7)`,
		`ARRAY(aggregate(filter(CAST(patients, array), age > 60), avg(age)))`,
		`TEXT(scan(CAST(patients, text), '2', '3'))`,
		`TEXT(get(CAST(patients, text), '1'))`,
		`RELATIONAL(SELECT * FROM CAST(wf, relation) WHERE v > 1.5)`,
		`RELATIONAL(SELECT COUNT(*) AS n FROM CAST(ARRAY(filter(wf, v > 1.5)), relation))`,
	}
	for _, q := range queries {
		on := demoStore(t)
		off := demoStore(t)
		off.SetPushdown(false)
		relOn, errOn := on.Query(q)
		relOff, errOff := off.Query(q)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%s: pushdown err %v vs baseline err %v", q, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		if got, want := canonRelation(relOn), canonRelation(relOff); got != want {
			t.Errorf("%s:\npushdown: %s\nbaseline: %s", q, got, want)
		}
	}
}

// canonRelation renders a relation order-insensitively (schema plus
// sorted row lines) for differential comparison.
func canonRelation(rel *engine.Relation) string {
	var sb strings.Builder
	for _, c := range rel.Schema.Columns {
		fmt.Fprintf(&sb, "%s:%v|", strings.ToLower(c.Name), c.Type)
	}
	sb.WriteByte('\n')
	lines := make([]string, rel.Len())
	for i, row := range rel.Tuples {
		var rb strings.Builder
		for _, v := range row {
			rb.WriteString(fmt.Sprintf("%d:%s\x1f", v.Kind, v.String()))
		}
		lines[i] = rb.String()
	}
	insertionSort(lines)
	return sb.String() + strings.Join(lines, "\n")
}

func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Queries must not leak their CAST temporaries: catalog entries, tables
// and arrays created for a query disappear when it completes.
func TestQueryTempObjectCleanup(t *testing.T) {
	p := demoStore(t)
	baseline := func() (int, int, int, int) {
		return len(p.Objects()), len(p.Relational.Tables()), len(p.ArrayStore.Names()), len(p.KV.Tables())
	}
	o0, t0, a0, k0 := baseline()
	queries := []string{
		`RELATIONAL(SELECT * FROM CAST(wf, relation) WHERE v > 1.5)`,
		`RELATIONAL(SELECT COUNT(*) FROM wf WHERE v >= 1)`, // shim path
		`ARRAY(aggregate(CAST(patients, array), max(age)))`,
		`ARRAY(aggregate(patients, avg(age)))`, // shim path
		`TEXT(scan(CAST(patients, text), '1', '3'))`,
		`RELATIONAL(SELECT COUNT(*) AS n FROM CAST(ARRAY(filter(wf, v > 1.5)), relation))`,
	}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			if _, err := p.Query(q); err != nil {
				t.Fatalf("%s: %v", q, err)
			}
		}
	}
	// Run with the planner off too: the unplanned path must also clean up.
	p.SetPushdown(false)
	for _, q := range queries {
		if _, err := p.Query(q); err != nil {
			t.Fatalf("planner off %s: %v", q, err)
		}
	}
	if o1, t1, a1, k1 := baseline(); o1 != o0 || t1 != t0 || a1 != a0 || k1 != k0 {
		t.Errorf("temp objects leaked: objects %d→%d tables %d→%d arrays %d→%d kv %d→%d",
			o0, o1, t0, t1, a0, a1, k0, k1)
	}
}

// A failing query must still reclaim the temporaries it minted before
// the failure.
func TestQueryTempCleanupOnError(t *testing.T) {
	p := demoStore(t)
	o0 := len(p.Objects())
	t0 := len(p.Relational.Tables())
	// The first CAST succeeds, the second names a missing object.
	q := `RELATIONAL(SELECT * FROM CAST(wf, relation) w JOIN CAST(missing, relation) m ON w.t = m.t)`
	if _, err := p.Query(q); err == nil {
		t.Fatal("query should fail")
	}
	if o1, t1 := len(p.Objects()), len(p.Relational.Tables()); o1 != o0 || t1 != t0 {
		t.Errorf("error path leaked: objects %d→%d tables %d→%d", o0, o1, t0, t1)
	}
}

// Domain-sensitive array bodies must not get predicate pushdown: a
// filtered load infers a shrunken dim domain from the pruned cells,
// which subarray/regrid/window/multiply and the 3-arg (group-by-dim)
// aggregate all observe — including when the call puts whitespace
// before the parenthesis, which the array engine tolerates.
func TestArrayDomainSensitivePushdown(t *testing.T) {
	queries := []string{
		`ARRAY(aggregate(filter(CAST(wf, array), v > 1.5), min(v), t))`,
		`ARRAY(subarray (filter(CAST(wf, array), v > 1.5), 2, 5))`,
		`ARRAY(aggregate (filter(CAST(wf, array), v > 1.5), min(v), t))`,
		`ARRAY(regrid(filter(CAST(wf, array), v > 1.5), 4, avg(v)))`,
	}
	for _, q := range queries {
		on := demoStore(t)
		off := demoStore(t)
		off.SetPushdown(false)
		relOn, errOn := on.Query(q)
		relOff, errOff := off.Query(q)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%s: error divergence: on=%v off=%v", q, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		if got, want := canonRelation(relOn), canonRelation(relOff); got != want {
			t.Errorf("%s:\npushdown: %s\nbaseline: %s", q, got, want)
		}
		if pushed, _ := on.CastStats(); pushed != 0 {
			t.Errorf("%s: domain-sensitive body must not push (pushed=%d)", q, pushed)
		}
	}
}

// A predicate cast that matches zero rows cannot land in an array and
// must error (not silently migrate everything); CastStats must not
// count failed migrations or identity projections as pushdown.
func TestCastPredicateEdgeAccounting(t *testing.T) {
	p := demoStore(t)
	if _, err := p.Cast("patients", EngineSciDB, CastOptions{Predicate: "age > 1000"}); err == nil {
		t.Error("zero-match predicate into scidb should error, not migrate in full")
	}
	if pushed, full := p.CastStats(); pushed != 0 || full != 0 {
		t.Errorf("failed cast must count as neither: pushed=%d full=%d", pushed, full)
	}
	// Through the island, the planner retries the failed pushed cast in
	// full — one logical cast, counted once, as full.
	if _, err := p.Query(`ARRAY(scan(filter(CAST(patients, array), age > 1000)))`); err != nil {
		t.Fatalf("zero-match island query must still work via fallback: %v", err)
	}
	if pushed, full := p.CastStats(); pushed != 0 || full != 1 {
		t.Errorf("fallback cast accounting: pushed=%d full=%d (want 0, 1)", pushed, full)
	}
	p2 := demoStore(t)
	res, err := p2.Cast("patients", EnginePostgres, CastOptions{
		Columns: []string{"id", "name", "age"}, // the full schema, in order
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.dropTempObjects([]string{res.Target})
	if pushed, full := p2.CastStats(); pushed != 0 || full != 1 {
		t.Errorf("identity projection counted as pushdown: pushed=%d full=%d", pushed, full)
	}
}

// TileDB targets reject a cast predicate outright: their load is
// lossy (dims AsInt-coerced, collisions overwritten) and has no
// cell-faithful filter, so raw-row pre-filtering would land wrong cells.
func TestCastPredicateTileDBRejected(t *testing.T) {
	p := demoStore(t)
	if _, err := p.Cast("wf", EngineTileDB, CastOptions{Predicate: "v > 1"}); err == nil {
		t.Error("predicate cast into tiledb should be refused")
	}
	if _, err := p.Cast("wf", EngineTileDB, CastOptions{}); err != nil {
		t.Errorf("plain tiledb cast must still work: %v", err)
	}
}

// Pushdown must stay behind when it would change semantics.
func TestPushdownSafetyGuards(t *testing.T) {
	p := demoStore(t)
	// LEFT JOIN right side: IS NULL probes padded rows, so the predicate
	// must not pre-filter the joined table.
	q := `RELATIONAL(SELECT p.name FROM patients p LEFT JOIN CAST(wf, relation) w ON p.id = w.t WHERE w.v IS NULL ORDER BY p.name)`
	on, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	off := demoStore(t)
	off.SetPushdown(false)
	want, err := off.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if canonRelation(on) != canonRelation(want) {
		t.Errorf("LEFT JOIN pushdown mismatch:\n%s\nvs\n%s", canonRelation(on), canonRelation(want))
	}
	// Guarded division: the guard and the division are separate
	// conjuncts; pushing `10 / (t-t) > 1` alone would error on every row.
	q = `RELATIONAL(SELECT t FROM CAST(wf, relation) WHERE t <> 0 AND 10 / t > 1)`
	rel, err := p.Query(q)
	if err != nil {
		t.Fatalf("guarded division must not error: %v", err)
	}
	if rel.Len() == 0 {
		t.Error("guarded division returned nothing")
	}
	// The reverse ordering errors on the baseline (left-to-right
	// short-circuit hits 10/0 before the guard). Pushing the guard would
	// shrink the division's evaluation set and make planner-on succeed
	// where planner-off raises — error behavior must agree, so one
	// error-prone conjunct anywhere disables predicate pushdown.
	q = `RELATIONAL(SELECT t FROM CAST(wf, relation) WHERE 10 / t > 1 AND t <> 0)`
	_, errOn := p.Query(q)
	off2 := demoStore(t)
	off2.SetPushdown(false)
	_, errOff := off2.Query(q)
	if (errOn == nil) != (errOff == nil) {
		t.Errorf("error divergence on unguarded division: on=%v off=%v", errOn, errOff)
	}
}
