package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/d4m"
	"repro/internal/engine"
)

// d4mIsland evaluates the D4M island's expression language over
// associative arrays and returns the result as (row, col, val) triples
// (or hop distances for bfs). Expressions compose:
//
//	assoc(obj [, rowCol, colCol, valCol])   — build from any object
//	transpose(X)        multiply(X, Y)      add(X, Y)
//	elementmul(X, Y)    sumrows(X)
//	filter(X, op, num)  — op ∈ { > >= < <= = <> }
//	subsetrows(X, 'lo', 'hi')   subsetcols(X, 'lo', 'hi')
//	bfs(X, 'start', maxHops)
//
// assoc() without explicit columns understands the kvstore dump shape
// natively (D4M's standard Accumulo mapping) and otherwise expects
// (row, col, val) columns.
func (p *Polystore) d4mIsland(body string) (*engine.Relation, error) {
	cmd, args, err := parseCommand(body)
	if err != nil {
		return nil, err
	}
	if cmd == "bfs" {
		if len(args) != 3 {
			return nil, fmt.Errorf("core: bfs(X, 'start', maxHops)")
		}
		a, err := p.evalD4M(args[0])
		if err != nil {
			return nil, err
		}
		hops, err := strconv.Atoi(strings.TrimSpace(args[2]))
		if err != nil {
			return nil, fmt.Errorf("core: bad maxHops %q", args[2])
		}
		dist := a.BFS(unquote(args[1]), hops)
		rel := engine.NewRelation(engine.NewSchema(
			engine.Col("node", engine.TypeString), engine.Col("hops", engine.TypeInt)))
		keys := make([]string, 0, len(dist))
		for k := range dist {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			_ = rel.Append(engine.Tuple{engine.NewString(k), engine.NewInt(int64(dist[k]))})
		}
		return rel, nil
	}
	a, err := p.evalD4M(body)
	if err != nil {
		return nil, err
	}
	return a.ToRelation(), nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// evalD4M evaluates a D4M expression to an associative array.
func (p *Polystore) evalD4M(expr string) (*d4m.Assoc, error) {
	expr = strings.TrimSpace(expr)
	cmd, args, err := parseCommand(expr)
	if err != nil {
		return nil, fmt.Errorf("core: d4m expression %q: %w", expr, err)
	}
	binary := func() (*d4m.Assoc, *d4m.Assoc, error) {
		if len(args) != 2 {
			return nil, nil, fmt.Errorf("core: %s takes two arrays", cmd)
		}
		x, err := p.evalD4M(args[0])
		if err != nil {
			return nil, nil, err
		}
		y, err := p.evalD4M(args[1])
		if err != nil {
			return nil, nil, err
		}
		return x, y, nil
	}
	switch cmd {
	case "assoc":
		if len(args) != 1 && len(args) != 4 {
			return nil, fmt.Errorf("core: assoc(obj [, rowCol, colCol, valCol])")
		}
		rel, err := p.Dump(strings.TrimSpace(args[0]))
		if err != nil {
			return nil, err
		}
		if len(args) == 4 {
			return d4m.FromRelation(rel, strings.TrimSpace(args[1]), strings.TrimSpace(args[2]), strings.TrimSpace(args[3]))
		}
		if isKVDumpShape(rel.Schema) {
			return d4m.FromKVDump(rel)
		}
		return d4m.FromRelation(rel, "row", "col", "val")
	case "transpose":
		if len(args) != 1 {
			return nil, fmt.Errorf("core: transpose(X)")
		}
		x, err := p.evalD4M(args[0])
		if err != nil {
			return nil, err
		}
		return x.Transpose(), nil
	case "sumrows":
		if len(args) != 1 {
			return nil, fmt.Errorf("core: sumrows(X)")
		}
		x, err := p.evalD4M(args[0])
		if err != nil {
			return nil, err
		}
		return x.SumRows(), nil
	case "multiply":
		x, y, err := binary()
		if err != nil {
			return nil, err
		}
		return x.Multiply(y), nil
	case "add":
		x, y, err := binary()
		if err != nil {
			return nil, err
		}
		return x.Add(y), nil
	case "elementmul":
		x, y, err := binary()
		if err != nil {
			return nil, err
		}
		return x.ElementMul(y), nil
	case "filter":
		if len(args) != 3 {
			return nil, fmt.Errorf("core: filter(X, op, number)")
		}
		x, err := p.evalD4M(args[0])
		if err != nil {
			return nil, err
		}
		threshold, err := strconv.ParseFloat(strings.TrimSpace(args[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad filter threshold %q", args[2])
		}
		op := strings.TrimSpace(unquote(args[1]))
		var pred func(float64) bool
		switch op {
		case ">":
			pred = func(v float64) bool { return v > threshold }
		case ">=":
			pred = func(v float64) bool { return v >= threshold }
		case "<":
			pred = func(v float64) bool { return v < threshold }
		case "<=":
			pred = func(v float64) bool { return v <= threshold }
		case "=", "==":
			pred = func(v float64) bool { return v == threshold }
		case "<>", "!=":
			pred = func(v float64) bool { return v != threshold }
		default:
			return nil, fmt.Errorf("core: unknown filter op %q", op)
		}
		return x.Filter(pred), nil
	case "subsetrows", "subsetcols":
		if len(args) != 3 {
			return nil, fmt.Errorf("core: %s(X, 'lo', 'hi')", cmd)
		}
		x, err := p.evalD4M(args[0])
		if err != nil {
			return nil, err
		}
		lo, hi := unquote(args[1]), unquote(args[2])
		if cmd == "subsetrows" {
			return x.SubsetRows(lo, hi), nil
		}
		return x.SubsetCols(lo, hi), nil
	default:
		return nil, fmt.Errorf("core: unknown d4m operator %q", cmd)
	}
}
