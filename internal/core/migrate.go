package core

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvstore"
	"repro/internal/relational"
	"repro/internal/tiledb"
	"repro/internal/trace"
)

// CastMode selects the data-movement path behind the CAST operator.
// The paper (§2.1) distinguishes file-based import/export from "an
// access method that knows how to read binary data in parallel directly
// from another engine" — E2 benchmarks the two.
type CastMode int

// CAST data-movement modes.
const (
	// CastDirect streams the self-describing binary wire format between
	// engines in memory.
	CastDirect CastMode = iota
	// CastCSVFile exports to a CSV file and re-imports it — the
	// baseline BigDAWG improves on.
	CastCSVFile
)

// CastOptions tunes a CAST.
type CastOptions struct {
	Mode CastMode
	// TempDir holds CSV intermediates for CastCSVFile (default os.TempDir).
	TempDir string
	// TargetName overrides the minted temp name for the migrated copy.
	TargetName string
	// ArrayDims names the dimension columns when casting into the array
	// engine; when empty, all leading INT columns are used (with a
	// synthesized row-number dimension if there are none).
	ArrayDims []string
	// Dense requests dense storage for array targets.
	Dense bool
	// Predicate, when non-empty, filters the migration at the source: a
	// SQL expression (the shared predicate dialect every island's filter
	// speaks via relational.CompileRowExpr) over the source object's own
	// column names. Only rows satisfying it cross the wire. Relational
	// sources evaluate it with the vectorized filter kernels on the
	// column cache; array sources translate it to a native filter();
	// every other engine filters the dumped relation before encoding.
	// For SciDB targets the predicate is evaluated on the cells the
	// loader will build (dim columns coerced to int coordinates,
	// coordinate collisions resolved last-write-wins) rather than the
	// raw rows, so pre-wire filtering commutes with the lossy
	// relation→array transformation; dense SciDB loads ignore the
	// predicate entirely (pre-filtering would change the inferred
	// domain's fill cells), and TileDB targets reject it (their load is
	// lossy the same way, with no cell-faithful filter). A SciDB-target
	// predicate matching zero rows errors — arrays cannot be empty —
	// rather than silently migrating everything; the planner falls back
	// to a full cast itself in that case. Set by the cross-island
	// pushdown planner, usable directly too.
	Predicate string
	// Columns, when non-empty, projects the migrated copy down to these
	// source columns (in the given order) before the wire.
	Columns []string
}

// CastResult describes a completed migration.
type CastResult struct {
	Object   string
	From, To EngineKind
	Target   string // logical (and physical) name of the migrated copy
	// Rows counts rows actually moved; RowsScanned counts source rows
	// examined. With predicate pushdown the two diverge — their ratio is
	// the selectivity the planner exploited.
	Rows        int
	RowsScanned int
	Bytes       int64
	// Retries counts attempts beyond the first that this migration spent
	// on faults classified transient.
	Retries int
	// Pushed reports whether a source-side predicate or projection
	// actually applied before the wire (the CastStats split, per cast).
	Pushed  bool
	Elapsed time.Duration
}

// Cast migrates a catalog object to another engine, registering the
// copy under a new name and returning it. The source object remains in
// place (the paper defers replication/transactions to future work, so
// CAST copies).
func (p *Polystore) Cast(object string, to EngineKind, opts CastOptions) (CastResult, error) {
	return p.CastCtx(context.Background(), object, to, opts)
}

// CastCtx is Cast with cancellation, deadlines and fault tolerance.
// The migration is atomic: the copy loads under an unregistered stage
// name and is renamed + registered only once fully landed, so an error
// or cancellation anywhere in dump → encode → decode → load → commit
// leaves the catalog and every engine exactly as they were. Faults
// classified transient (see IsTransientError) are retried with
// exponential backoff within the polystore's RetryPolicy; each retry
// restarts from a clean slate.
func (p *Polystore) CastCtx(ctx context.Context, object string, to EngineKind, opts CastOptions) (CastResult, error) {
	// A sharded source is first gathered from its shards into a local
	// temp copy (original row order restored), then cast normally; the
	// temp is reclaimed before returning.
	if _, sharded := p.placementOf(object); sharded {
		tmp, err := p.gatherToTemp(ctx, object)
		if tmp != "" {
			defer p.dropTempObjects([]string{tmp})
		}
		if err != nil {
			return CastResult{Object: object, From: EnginePostgres, To: to}, err
		}
		res, err := p.CastCtx(ctx, tmp, to, opts)
		res.Object = object
		return res, err
	}
	start := time.Now()
	info, ok := p.Lookup(object)
	if !ok {
		return CastResult{}, fmt.Errorf("core: unknown object %q", object)
	}
	res := CastResult{Object: object, From: info.Engine, To: to}
	// TileDB loads re-key rows lossily (dim columns coerced with AsInt,
	// coordinate collisions overwritten) and, unlike SciDB targets, have
	// no cell-faithful filter — a raw-row predicate would not commute
	// with the load. Refuse rather than migrate the wrong cells; filter
	// after the cast instead. The planner never emits this combination.
	if opts.Predicate != "" && to == EngineTileDB {
		return res, fmt.Errorf("core: CastOptions.Predicate is not supported for TileDB targets (lossy coordinate load); filter after the cast")
	}
	ctx, cspan := trace.Start(ctx, "cast")
	defer cspan.End()
	cspan.SetStr("object", object)
	cspan.SetStr("from", string(info.Engine))
	cspan.SetStr("to", string(to))
	if opts.Predicate != "" {
		cspan.SetStr("predicate", opts.Predicate)
	}
	if len(opts.Columns) > 0 {
		cspan.SetStr("columns", strings.Join(opts.Columns, ","))
	}
	target := opts.TargetName
	if target == "" {
		target = p.tempName("cast")
	}
	pol := p.retryPolicy()
	for attempt := 0; ; attempt++ {
		actx, aspan := trace.Start(ctx, "attempt")
		aspan.SetInt("n", int64(attempt))
		err := p.castOnce(actx, info, to, target, opts, &res)
		if err != nil {
			aspan.SetStr("error", err.Error())
		}
		aspan.End()
		if err == nil {
			res.Target = target
			res.Elapsed = time.Since(start)
			p.finishCast(cspan, &res, nil)
			return res, nil
		}
		if ctx.Err() != nil || !IsTransientError(err) || attempt+1 >= pol.MaxAttempts {
			res.Elapsed = time.Since(start)
			p.finishCast(cspan, &res, err)
			return res, err
		}
		if serr := sleepCtx(ctx, pol.backoff(attempt)); serr != nil {
			res.Elapsed = time.Since(start)
			p.finishCast(cspan, &res, serr)
			return res, serr
		}
		res.Retries++
		p.om.castRetries.Inc()
	}
}

// finishCast settles a migration's observability: the cast span gets
// its byte/row/pushdown annotations and the registry its counters. A
// failed migration counts only as an error — bytes and rows that never
// landed are not added to the moved totals.
func (p *Polystore) finishCast(sp *trace.Span, res *CastResult, err error) {
	sp.SetInt("wire_bytes", res.Bytes)
	sp.SetInt("rows_scanned", int64(res.RowsScanned))
	sp.SetInt("rows_moved", int64(res.Rows))
	if res.Retries > 0 {
		sp.SetInt("retries", int64(res.Retries))
	}
	if err != nil {
		sp.SetStr("outcome", "error")
		p.om.castErrors.Inc()
		return
	}
	if res.Pushed {
		sp.SetStr("pushdown", "pushed")
	} else {
		sp.SetStr("pushdown", "full")
	}
	p.om.castCount.Inc()
	p.om.castLatency.Observe(res.Elapsed)
	p.om.castBytes.Add(res.Bytes)
	p.om.castRowsScanned.Add(int64(res.RowsScanned))
	p.om.castRowsMoved.Add(int64(res.Rows))
}

// castOnce runs one migration attempt into target. Any error leaves
// zero trace: the staged copy is dropped before returning, and nothing
// registers in the catalog until commit. res fields describing the
// attempt (RowsScanned, Bytes, Rows) are overwritten per attempt.
func (p *Polystore) castOnce(ctx context.Context, info ObjectInfo, to EngineKind, target string, opts CastOptions, res *CastResult) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := fault.Hit(FpCastDump); err != nil {
		return err
	}
	stage := p.tempName("stage")
	// Direct casts out of the relational engine move columnar end to
	// end: the table's column cache is encoded straight to the wire and
	// decoded straight into a ColumnBatch — no per-row Tuple boxing
	// anywhere on the transport. SciDB targets with a predicate take the
	// generic path below instead: their predicate must see the post-cast
	// cells (see scidbCellFilter), not the raw rows this path filters.
	if opts.Mode == CastDirect && info.Engine == EnginePostgres &&
		!(opts.Predicate != "" && to == EngineSciDB) {
		_, dspan := trace.Start(ctx, "dump")
		cb, scanned, applied, err := p.Relational.DumpBatchWhere(info.Physical, opts.Predicate, opts.Columns)
		dspan.End()
		if err != nil {
			return err
		}
		res.RowsScanned = scanned
		res.Pushed = applied
		wctx, wspan := trace.Start(ctx, "wire")
		out, nbytes, err := castDirectBatch(wctx, cb)
		wspan.SetInt("bytes", nbytes)
		wspan.End()
		if err != nil {
			return err
		}
		res.Bytes = nbytes
		_, lspan := trace.Start(ctx, "load")
		err = p.stageBatch(ctx, to, stage, out, opts)
		lspan.End()
		if err != nil {
			p.rollback(ctx, to, stage)
			return err
		}
		if err := p.commitStage(ctx, to, stage, target); err != nil {
			p.rollback(ctx, to, stage)
			return err
		}
		p.countCast(applied)
		res.Rows = out.NumRows
		return nil
	}

	_, dspan := trace.Start(ctx, "dump")
	rel, scanned, applied, err := p.dumpFiltered(info, to, opts)
	dspan.End()
	if err != nil {
		return err
	}
	res.RowsScanned = scanned
	res.Pushed = applied

	// Move the bytes through the selected transport.
	switch opts.Mode {
	case CastDirect:
		wctx, wspan := trace.Start(ctx, "wire")
		var nbytes int64
		rel, nbytes, err = castDirect(wctx, rel)
		wspan.SetInt("bytes", nbytes)
		wspan.End()
		if err != nil {
			return err
		}
		res.Bytes = nbytes
	case CastCSVFile:
		_, wspan := trace.Start(ctx, "wire")
		wspan.SetStr("mode", "csv")
		var nbytes int64
		rel, nbytes, err = castCSV(rel, opts.TempDir)
		wspan.SetInt("bytes", nbytes)
		wspan.End()
		if err != nil {
			return err
		}
		res.Bytes = nbytes
	default:
		return fmt.Errorf("core: unknown cast mode %d", opts.Mode)
	}

	_, lspan := trace.Start(ctx, "load")
	err = p.loadPhysical(ctx, to, stage, rel, opts)
	lspan.End()
	if err != nil {
		p.rollback(ctx, to, stage)
		return err
	}
	if err := p.commitStage(ctx, to, stage, target); err != nil {
		p.rollback(ctx, to, stage)
		return err
	}
	p.countCast(applied)
	res.Rows = rel.Len()
	return nil
}

// castCSV round-trips a relation through a CSV file — the file-based
// transport the paper's direct binary cast is benchmarked against. It
// returns the re-imported relation and the file size.
func castCSV(rel *engine.Relation, dir string) (*engine.Relation, int64, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "bigdawg_cast_*.csv")
	if err != nil {
		return nil, 0, err
	}
	path := f.Name()
	defer os.Remove(path)
	bw := bufio.NewWriter(f)
	if err := rel.WriteCSV(fault.Wrap(FpCastPipe, bw)); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	rf, err := os.Open(filepath.Clean(path))
	if err != nil {
		return nil, 0, err
	}
	out, err := engine.ReadCSV(bufio.NewReader(rf))
	rf.Close()
	if err != nil {
		return nil, 0, err
	}
	return out, fi.Size(), nil
}

// rollback discards a staged copy after a failed attempt — the
// compensating half of the atomic cast — recording the event as a span
// and in the rollback counter.
func (p *Polystore) rollback(ctx context.Context, to EngineKind, stage string) {
	_, sp := trace.Start(ctx, "rollback")
	p.dropPhysical(to, stage)
	p.om.castRollbacks.Inc()
	sp.End()
}

// commitStage makes a fully-landed staged copy visible as target: the
// physical object is renamed (refusing to clobber an existing one) and
// only then registered in the catalog. Until the rename, a crash or
// fault costs nothing but the unregistered stage object, which the
// caller drops.
func (p *Polystore) commitStage(ctx context.Context, to EngineKind, stage, target string) error {
	_, sp := trace.Start(ctx, "commit")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := fault.Hit(FpCastCommit); err != nil {
		return err
	}
	if err := p.renamePhysical(to, stage, target); err != nil {
		return err
	}
	if err := p.Register(target, to, target); err != nil {
		// The logical name is taken. The rename proved the physical
		// target name was free, so the renamed stage is ours to discard.
		p.dropPhysical(to, target)
		return err
	}
	return nil
}

// renamePhysical renames an engine-resident object. Physical names
// track logical names everywhere (islands splice them into engine
// queries), so commit renames rather than repointing the catalog.
func (p *Polystore) renamePhysical(eng EngineKind, oldName, newName string) error {
	switch eng {
	case EnginePostgres:
		return p.Relational.RenameTable(oldName, newName)
	case EngineSciDB:
		return p.ArrayStore.Rename(oldName, newName)
	case EngineAccumulo:
		return p.KV.Rename(oldName, newName)
	case EngineTileDB:
		p.mu.Lock()
		defer p.mu.Unlock()
		ok, nk := strings.ToLower(oldName), strings.ToLower(newName)
		a, found := p.tile[ok]
		if !found {
			return fmt.Errorf("core: no tiledb array %q", oldName)
		}
		if _, taken := p.tile[nk]; taken && nk != ok {
			return fmt.Errorf("core: tiledb array %q already exists", newName)
		}
		delete(p.tile, ok)
		a.Name = newName
		p.tile[nk] = a
		return nil
	default:
		return fmt.Errorf("core: cannot rename in engine %q", eng)
	}
}

// dropPhysical removes an engine-resident object, ignoring absence —
// rollback for staged copies that never reached the catalog.
func (p *Polystore) dropPhysical(eng EngineKind, name string) {
	switch eng {
	case EnginePostgres:
		_ = p.Relational.DropTable(name)
	case EngineSciDB:
		_ = p.ArrayStore.Remove(name)
	case EngineAccumulo:
		_ = p.KV.DropTable(name)
	case EngineTileDB:
		p.mu.Lock()
		delete(p.tile, strings.ToLower(name))
		p.mu.Unlock()
	}
}

// countCast records one completed migration in the pushed/full split
// CastStats reports. It runs only once the copy has landed — a failed
// migration counts as neither — and pushed means the shipped relation
// actually went through a source-side filter or a non-identity
// projection: a requested pushdown that was a no-op (cell filter with
// no dims, identity projection) or that failed and was retried in full
// counts as full, so the stats never over-report planner engagement.
func (p *Polystore) countCast(pushed bool) {
	if pushed {
		p.om.castPushed.Inc()
	} else {
		p.om.castFull.Inc()
	}
}

// dumpFiltered exports a catalog object as a relation with the cast's
// predicate and projection applied at (or as close as possible to) the
// source — the egress half of pushdown. Relational sources filter on
// the column cache with the vectorized kernels; array sources translate
// the predicate into the engine's native filter() operator; every other
// engine dumps and filters the relation before it reaches the wire.
// scanned reports source rows examined before filtering; applied
// reports whether any filtering or projection actually ran.
func (p *Polystore) dumpFiltered(info ObjectInfo, to EngineKind, opts CastOptions) (*engine.Relation, int, bool, error) {
	if opts.Predicate == "" && len(opts.Columns) == 0 {
		rel, err := p.Dump(info.Name)
		if err != nil {
			return nil, 0, false, err
		}
		return rel, rel.Len(), false, nil
	}
	// SciDB targets: the loader re-keys the shipped rows into cells
	// (dim values coerced to int coordinates, coordinate collisions
	// overwritten), so a predicate filtered over the raw rows does not
	// commute with filtering the landed array. Evaluate it on the cells
	// the loader will build instead — whatever the source engine.
	if opts.Predicate != "" && to == EngineSciDB {
		rel, err := p.Dump(info.Name)
		if err != nil {
			return nil, 0, false, err
		}
		scanned := rel.Len()
		projected, err := projectRelation(rel, opts.Columns)
		if err != nil {
			return nil, scanned, false, err
		}
		applied := projected != rel
		rel = projected
		if !opts.Dense { // dense loads materialize domain fill cells; pre-filtering would change them
			filtered, ok, err := scidbCellFilter(rel, opts.Predicate, opts.ArrayDims)
			if err != nil {
				return nil, scanned, false, err
			}
			rel, applied = filtered, applied || ok
		}
		return rel, scanned, applied, nil
	}
	switch info.Engine {
	case EnginePostgres:
		cb, scanned, applied, err := p.Relational.DumpBatchWhere(info.Physical, opts.Predicate, opts.Columns)
		if err != nil {
			return nil, scanned, false, err
		}
		return cb.ToRelation(), scanned, applied, nil
	case EngineSciDB:
		a, err := p.ArrayStore.Get(info.Physical)
		if err != nil {
			return nil, 0, false, err
		}
		scanned := int(a.Count())
		applied := false
		if opts.Predicate != "" {
			// The array island's filter() dialect is the same SQL
			// expression grammar, so the predicate passes through verbatim.
			a, err = a.Filter(opts.Predicate)
			if err != nil {
				return nil, scanned, false, err
			}
			applied = true
		}
		scanRel := a.Scan()
		rel, err := projectRelation(scanRel, opts.Columns)
		return rel, scanned, applied || rel != scanRel, err
	default:
		rel, err := p.Dump(info.Name)
		if err != nil {
			return nil, 0, false, err
		}
		scanned := rel.Len()
		out, err := filterProjectRelation(rel, opts.Predicate, opts.Columns)
		return out, scanned, out != rel, err
	}
}

// scidbCellFilter filters rel as the SciDB loader will see it: dim
// columns (ArrayDims, or the leading INT columns exactly like
// Polystore.Load) coerced to their int coordinates, coordinate
// collisions resolved last-write-wins, the predicate evaluated on the
// final cell of each coordinate — dims first, then attributes, the
// cell schema Array.Filter exposes. Only final-writer rows whose cell
// passes are shipped, so filtering before the wire commutes with the
// lossy relation→array transformation (NULL dims coerce to 0,
// colliding rows overwrite) and the island's own filter() over the
// landed copy is a no-op re-check. When the loader would synthesize a
// row-number dimension (no leading INT column), pre-filtering would
// renumber it, so the relation ships unfiltered (filtered=false).
func scidbCellFilter(rel *engine.Relation, predicate string, dimNames []string) (*engine.Relation, bool, error) {
	dims := dimNames
	if len(dims) == 0 {
		dims = leadingIntColumns(rel)
	}
	if len(dims) == 0 {
		return rel, false, nil
	}
	dimIdx := make([]int, len(dims))
	isDim := map[int]bool{}
	for i, dn := range dims {
		j := rel.Schema.Index(dn)
		if j < 0 {
			return nil, false, fmt.Errorf("core: pushdown: no dim column %q", dn)
		}
		dimIdx[i] = j
		isDim[j] = true
	}
	var attrIdx []int
	cellCols := make([]engine.Column, 0, len(rel.Schema.Columns))
	for _, j := range dimIdx {
		cellCols = append(cellCols, engine.Col(rel.Schema.Columns[j].Name, engine.TypeInt))
	}
	for j, c := range rel.Schema.Columns {
		if !isDim[j] {
			attrIdx = append(attrIdx, j)
			cellCols = append(cellCols, c)
		}
	}
	ev, err := relational.CompileRowExpr(predicate, cellCols)
	if err != nil {
		return nil, false, fmt.Errorf("core: pushdown predicate: %w", err)
	}

	winner := make(map[string]int, len(rel.Tuples))
	keys := make([]string, len(rel.Tuples))
	var key strings.Builder
	for i, t := range rel.Tuples {
		key.Reset()
		for _, j := range dimIdx {
			fmt.Fprintf(&key, "%d,", t[j].AsInt())
		}
		keys[i] = key.String()
		winner[keys[i]] = i
	}
	kept := rel.Tuples[:0:0]
	cell := make(engine.Tuple, len(cellCols))
	for i, t := range rel.Tuples {
		if winner[keys[i]] != i {
			continue // overwritten by a later row at the same coordinate
		}
		for k, j := range dimIdx {
			cell[k] = engine.NewInt(t[j].AsInt())
		}
		for k, j := range attrIdx {
			cell[len(dimIdx)+k] = t[j]
		}
		v, err := ev(cell)
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.AsBool() {
			kept = append(kept, t)
		}
	}
	return &engine.Relation{Schema: rel.Schema, Tuples: kept}, true, nil
}

// filterProjectRelation applies a pushdown predicate and projection to
// an already-dumped relation — the generic fallback for engines with no
// native filtered scan (kv range scans excepted, stream windows,
// TileDB). The input relation is consumed (tuples may be re-sliced).
func filterProjectRelation(rel *engine.Relation, predicate string, columns []string) (*engine.Relation, error) {
	if predicate != "" {
		ev, err := relational.CompileRowExpr(predicate, rel.Schema.Columns)
		if err != nil {
			return nil, fmt.Errorf("core: pushdown predicate: %w", err)
		}
		kept := rel.Tuples[:0:0]
		for _, t := range rel.Tuples {
			v, err := ev(t)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.AsBool() {
				kept = append(kept, t)
			}
		}
		rel = &engine.Relation{Schema: rel.Schema, Tuples: kept}
	}
	return projectRelation(rel, columns)
}

// projectRelation restricts a relation to the named columns, in order.
func projectRelation(rel *engine.Relation, columns []string) (*engine.Relation, error) {
	if len(columns) == 0 {
		return rel, nil
	}
	idx := make([]int, len(columns))
	cols := make([]engine.Column, len(columns))
	identity := len(columns) == len(rel.Schema.Columns)
	for k, name := range columns {
		j := rel.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("core: pushdown projection: no column %q", name)
		}
		idx[k] = j
		cols[k] = rel.Schema.Columns[j]
		if j != k {
			identity = false
		}
	}
	if identity {
		return rel, nil
	}
	out := engine.NewRelation(engine.Schema{Columns: cols})
	out.Tuples = make([]engine.Tuple, len(rel.Tuples))
	arena := make([]engine.Value, len(rel.Tuples)*len(idx))
	for i, t := range rel.Tuples {
		row := arena[i*len(idx) : (i+1)*len(idx) : (i+1)*len(idx)]
		for k, j := range idx {
			row[k] = t[j]
		}
		out.Tuples[i] = row
	}
	return out, nil
}

// parallelCastRows is the cardinality at which the direct transport
// switches from a single decoder to parallel batch decoding.
const parallelCastRows = 50_000

// countingWriter tracks how many bytes crossed the transport so CAST
// byte accounting no longer requires materialising the stream.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// pipeTransport wires up the shared plumbing of both direct-cast
// transports: an io.Pipe with byte counting and the FpCastPipe fault
// interposer on the write side, plus (when the context can end) a
// watcher goroutine that tears the pipe down on cancellation. The
// returned cancelWatch must be called once the decode side returns; it
// stops the watcher so no goroutine outlives the cast.
func pipeTransport(ctx context.Context) (pr *io.PipeReader, w io.Writer, pw *io.PipeWriter, cw *countingWriter, cancelWatch func()) {
	pr, pw = io.Pipe()
	cw = &countingWriter{w: pw}
	w = fault.Wrap(FpCastPipe, cw)
	cancelWatch = func() {}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				// Both ends of the pipe fail from here on: the encoder's
				// next Write and the decoder's next Read return ctx.Err(),
				// so both goroutines unwind promptly.
				pr.CloseWithError(ctx.Err())
			case <-stop:
			}
		}()
		cancelWatch = func() { close(stop) }
	}
	return pr, w, pw, cw, cancelWatch
}

// transportErr settles the error of a finished direct-cast transport.
// The encoder's error is preferred as the root cause: when the encoder
// failed first the decoder only ever sees its echo wrapped as stream
// corruption (which would hide an injected fault's transient
// classification), and when the decoder failed first the encoder
// reports the identical error echoed back through the closed pipe. A
// done context trumps both — cancellation is the cause, whatever the
// pipe surfaced first.
func transportErr(ctx context.Context, decodeErr, encodeErr error) error {
	err := decodeErr
	if encodeErr != nil {
		err = encodeErr
	}
	if cerr := ctx.Err(); cerr != nil {
		err = cerr
	}
	return err
}

// castDirect streams rel through the v2 binary wire format with the
// encoder and decoder running concurrently over an io.Pipe, so the
// transport costs max(encode, decode) rather than their sum — the
// paper's direct binary cast, without the seed's full-stream
// bytes.Buffer staging. Large relations additionally fan batch decoding
// out across CPUs. Cancelling ctx tears both goroutines down.
func castDirect(ctx context.Context, rel *engine.Relation) (*engine.Relation, int64, error) {
	parent := trace.FromContext(ctx)
	pr, w, pw, cw, cancelWatch := pipeTransport(ctx)
	encodeErr := make(chan error, 1)
	go func() {
		enc := parent.StartChild("encode")
		err := rel.WriteBinary(w)
		pw.CloseWithError(err)
		// End before the send: the main goroutine may inspect or render
		// the trace as soon as it reads encodeErr, and an open span there
		// would be an orphan.
		enc.End()
		encodeErr <- err
	}()
	dec := parent.StartChild("decode")
	var out *engine.Relation
	var err error
	if rel.Len() >= parallelCastRows {
		out, err = engine.ReadBinaryParallel(pr, runtime.GOMAXPROCS(0))
	} else {
		out, err = engine.ReadBinary(pr)
	}
	dec.End()
	cancelWatch()
	if err != nil {
		// Unblock the encoder if it is still mid-stream, then reap it.
		pr.CloseWithError(err)
		return nil, 0, transportErr(ctx, err, <-encodeErr)
	}
	if werr := <-encodeErr; werr != nil {
		return nil, 0, werr
	}
	return out, cw.n, nil
}

// castDirectBatch is castDirect for column batches: the same concurrent
// encode/decode over a pipe, but one wire frame decodes into one
// columnar mini-batch, so the transport allocates per frame rather than
// per row.
func castDirectBatch(ctx context.Context, cb *engine.ColumnBatch) (*engine.ColumnBatch, int64, error) {
	parent := trace.FromContext(ctx)
	pr, w, pw, cw, cancelWatch := pipeTransport(ctx)
	encodeErr := make(chan error, 1)
	go func() {
		enc := parent.StartChild("encode")
		err := cb.WriteBinary(w)
		pw.CloseWithError(err)
		// End before the send — see castDirect.
		enc.End()
		encodeErr <- err
	}()
	dec := parent.StartChild("decode")
	workers := 1
	if cb.NumRows >= parallelCastRows {
		workers = runtime.GOMAXPROCS(0)
	}
	out, err := engine.ReadBinaryColumnar(pr, workers)
	dec.End()
	cancelWatch()
	if err != nil {
		pr.CloseWithError(err)
		return nil, 0, transportErr(ctx, err, <-encodeErr)
	}
	if werr := <-encodeErr; werr != nil {
		return nil, 0, werr
	}
	return out, cw.n, nil
}

// LoadBatch materialises a column batch in the target engine — the
// columnar ingress half of CAST. Relational targets ingest the batch
// directly; other engines receive the arena-materialised relation (two
// allocations for all tuples, not one per row).
func (p *Polystore) LoadBatch(to EngineKind, name string, cb *engine.ColumnBatch, opts CastOptions) error {
	return p.LoadBatchCtx(context.Background(), to, name, cb, opts)
}

// LoadBatchCtx is LoadBatch with cancellation, staged like LoadCtx.
func (p *Polystore) LoadBatchCtx(ctx context.Context, to EngineKind, name string, cb *engine.ColumnBatch, opts CastOptions) error {
	stage := p.tempName("stage")
	if err := p.stageBatch(ctx, to, stage, cb, opts); err != nil {
		p.rollback(ctx, to, stage)
		return err
	}
	return p.commitStageOrDrop(ctx, to, stage, name)
}

// stageBatch lands a column batch under an unregistered stage name.
// The columnar fast path only runs with no failpoints armed: under
// injection the batch goes through the split relation path so faults
// can observe (and rollback can discard) a half-loaded copy.
func (p *Polystore) stageBatch(ctx context.Context, to EngineKind, stage string, cb *engine.ColumnBatch, opts CastOptions) error {
	if to == EnginePostgres && !fault.Active() {
		if err := ctx.Err(); err != nil {
			return err
		}
		return p.Relational.InsertBatch(stage, cb)
	}
	return p.loadPhysical(ctx, to, stage, cb.ToRelation(), opts)
}

// Load materialises a relation as a new object in the target engine and
// registers it in the catalog — the ingress half of CAST.
func (p *Polystore) Load(to EngineKind, name string, rel *engine.Relation, opts CastOptions) error {
	return p.LoadCtx(context.Background(), to, name, rel, opts)
}

// LoadCtx is Load with cancellation. Like CastCtx it is atomic: the
// relation lands under an unregistered stage name and is renamed +
// registered only once complete, so a failed or cancelled load leaves
// no partial object in the engine and no catalog entry.
func (p *Polystore) LoadCtx(ctx context.Context, to EngineKind, name string, rel *engine.Relation, opts CastOptions) error {
	stage := p.tempName("stage")
	if err := p.loadPhysical(ctx, to, stage, rel, opts); err != nil {
		p.rollback(ctx, to, stage)
		return err
	}
	return p.commitStageOrDrop(ctx, to, stage, name)
}

// commitStageOrDrop commits a staged copy, rolling it back on failure.
func (p *Polystore) commitStageOrDrop(ctx context.Context, to EngineKind, stage, name string) error {
	if err := p.commitStage(ctx, to, stage, name); err != nil {
		p.rollback(ctx, to, stage)
		return err
	}
	return nil
}

// loadPhysical materialises a relation in the target engine under name
// without touching the catalog — the staging half of every load.
// Multi-step engine loads evaluate FpCastLoadMid part-way through, so
// fault schedules can strand a half-loaded object for rollback to
// discard; relational loads split into two halves under injection for
// the same reason.
func (p *Polystore) loadPhysical(ctx context.Context, to EngineKind, name string, rel *engine.Relation, opts CastOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := fault.Hit(FpCastLoad); err != nil {
		return err
	}
	switch to {
	case EnginePostgres:
		if fault.Active() {
			half := rel.Len() / 2
			first := &engine.Relation{Schema: rel.Schema, Tuples: rel.Tuples[:half]}
			if err := p.Relational.InsertRelation(name, first); err != nil {
				return err
			}
			if err := fault.Hit(FpCastLoadMid); err != nil {
				return err
			}
			rest := &engine.Relation{Schema: rel.Schema, Tuples: rel.Tuples[half:]}
			return p.Relational.InsertRelation(name, rest)
		}
		if err := p.Relational.InsertRelation(name, rel); err != nil {
			return err
		}
	case EngineSciDB:
		dims := opts.ArrayDims
		if len(dims) == 0 {
			dims = leadingIntColumns(rel)
		}
		work := rel
		if len(dims) == 0 {
			// Synthesize a row-number dimension.
			work = withRowNumber(rel)
			dims = []string{"i"}
		}
		a, err := array.FromRelation(name, work, dims, opts.Dense)
		if err != nil {
			return err
		}
		p.ArrayStore.Put(a)
		if err := fault.Hit(FpCastLoadMid); err != nil {
			return err
		}
	case EngineAccumulo:
		if err := p.loadKV(name, rel); err != nil {
			return err
		}
	case EngineTileDB:
		a, err := relationToTileDB(name, rel)
		if err != nil {
			return err
		}
		p.mu.Lock()
		p.tile[strings.ToLower(name)] = a
		p.mu.Unlock()
		if err := fault.Hit(FpCastLoadMid); err != nil {
			return err
		}
	case EngineSStore:
		return fmt.Errorf("core: cannot CAST into the streaming engine; streams ingest via TCP or Append")
	default:
		return fmt.Errorf("core: unknown target engine %q", to)
	}
	return nil
}

// loadKV stores a relation in the key-value engine. Relations already
// in the kvstore dump shape load natively; anything else maps row i,
// column c to (row=<first column value>, family="data", qualifier=<column
// name>, value=<cell>) — the generic D4M-style exploded layout.
//
// Keys and timestamps are derived purely from cell content, never from
// the row's position in the relation: a filtered (pushdown) migration
// must produce the same entries for the rows it keeps as a full
// migration would, or the planner's row-range pushdown would change
// scan results.
func (p *Polystore) loadKV(name string, rel *engine.Relation) error {
	if isKVDumpShape(rel.Schema) {
		return p.KV.LoadRelation(name, rel)
	}
	if len(rel.Schema.Columns) < 2 {
		return fmt.Errorf("core: relation needs ≥ 2 columns to load into accumulo")
	}
	if err := p.KV.CreateTable(name); err != nil {
		return err
	}
	// The table now exists with no entries — the half-loaded state a
	// fault here strands for rollback to discard.
	if err := fault.Hit(FpCastLoadMid); err != nil {
		return err
	}
	var es []kvstore.Entry
	for _, t := range rel.Tuples {
		rowKey := t[0].String()
		for j := 1; j < len(t); j++ {
			es = append(es, kvstore.Entry{
				Key: kvstore.Key{
					Row: rowKey, Family: "data",
					Qualifier: rel.Schema.Columns[j].Name, Timestamp: 0,
				},
				Value: t[j].String(),
			})
		}
	}
	return p.KV.PutBatch(name, es)
}

func isKVDumpShape(s engine.Schema) bool {
	want := []string{"row", "family", "qualifier", "ts", "value"}
	if len(s.Columns) != len(want) {
		return false
	}
	for i, n := range want {
		if !strings.EqualFold(s.Columns[i].Name, n) {
			return false
		}
	}
	return true
}

// leadingIntColumns returns the names of the leading INT columns, which
// serve as array dimensions by convention (at least one non-dimension
// attribute column must remain).
func leadingIntColumns(rel *engine.Relation) []string {
	var dims []string
	for _, c := range rel.Schema.Columns {
		if c.Type != engine.TypeInt {
			break
		}
		dims = append(dims, c.Name)
	}
	if len(dims) == len(rel.Schema.Columns) && len(dims) > 0 {
		dims = dims[:len(dims)-1] // keep the last column as the attribute
	}
	return dims
}

func withRowNumber(rel *engine.Relation) *engine.Relation {
	cols := append([]engine.Column{engine.Col("i", engine.TypeInt)}, rel.Schema.Columns...)
	out := engine.NewRelation(engine.Schema{Columns: cols})
	out.Tuples = make([]engine.Tuple, len(rel.Tuples))
	for i, t := range rel.Tuples {
		row := make(engine.Tuple, 0, len(t)+1)
		row = append(row, engine.NewInt(int64(i)))
		row = append(row, t...)
		out.Tuples[i] = row
	}
	return out
}

// relationToTileDB loads (int dims..., float value) rows into a fresh
// TileDB array.
func relationToTileDB(name string, rel *engine.Relation) (*tiledb.Array, error) {
	if rel.Len() == 0 {
		return nil, fmt.Errorf("core: cannot infer tiledb domain from empty relation")
	}
	nd := len(rel.Schema.Columns) - 1
	if nd < 1 {
		return nil, fmt.Errorf("core: tiledb load needs ≥ 2 columns (dims + value)")
	}
	lo := make([]int64, nd)
	hi := make([]int64, nd)
	for i := 0; i < nd; i++ {
		lo[i], hi[i] = 1<<62, -1<<62
	}
	cells := make([]tiledb.Cell, 0, rel.Len())
	for _, t := range rel.Tuples {
		coords := make([]int64, nd)
		for i := 0; i < nd; i++ {
			coords[i] = t[i].AsInt()
			if coords[i] < lo[i] {
				lo[i] = coords[i]
			}
			if coords[i] > hi[i] {
				hi[i] = coords[i]
			}
		}
		cells = append(cells, tiledb.Cell{Coords: coords, Value: t[nd].AsFloat()})
	}
	a, err := tiledb.NewArray(name, tiledb.Box{Lo: lo, Hi: hi}, 0.5)
	if err != nil {
		return nil, err
	}
	if err := a.Write(cells); err != nil {
		return nil, err
	}
	return a, nil
}

// Migrate moves an object permanently: cast to the target engine under
// the same logical name (with a fresh physical name), then repoint the
// catalog — the operation the monitoring system (§2.1) recommends.
func (p *Polystore) Migrate(object string, to EngineKind, opts CastOptions) (CastResult, error) {
	return p.MigrateCtx(context.Background(), object, to, opts)
}

// MigrateCtx is Migrate with cancellation and the atomic-cast
// guarantees of CastCtx: a failed or cancelled migration leaves the
// object exactly where it was.
func (p *Polystore) MigrateCtx(ctx context.Context, object string, to EngineKind, opts CastOptions) (CastResult, error) {
	info, ok := p.Lookup(object)
	if !ok {
		return CastResult{}, fmt.Errorf("core: unknown object %q", object)
	}
	if info.Engine == to {
		return CastResult{Object: object, From: to, To: to, Target: info.Physical}, nil
	}
	opts.TargetName = p.tempName("mig_" + object)
	res, err := p.CastCtx(ctx, object, to, opts)
	if err != nil {
		return res, err
	}
	// Repoint the logical name at the migrated copy.
	p.mu.Lock()
	delete(p.catalog, strings.ToLower(res.Target))
	p.catalog[strings.ToLower(object)] = ObjectInfo{Name: object, Engine: to, Physical: res.Target}
	p.mu.Unlock()
	res.Target = object
	return res, nil
}
