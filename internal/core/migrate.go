package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/array"
	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/tiledb"
)

// CastMode selects the data-movement path behind the CAST operator.
// The paper (§2.1) distinguishes file-based import/export from "an
// access method that knows how to read binary data in parallel directly
// from another engine" — E2 benchmarks the two.
type CastMode int

// CAST data-movement modes.
const (
	// CastDirect streams the self-describing binary wire format between
	// engines in memory.
	CastDirect CastMode = iota
	// CastCSVFile exports to a CSV file and re-imports it — the
	// baseline BigDAWG improves on.
	CastCSVFile
)

// CastOptions tunes a CAST.
type CastOptions struct {
	Mode CastMode
	// TempDir holds CSV intermediates for CastCSVFile (default os.TempDir).
	TempDir string
	// TargetName overrides the minted temp name for the migrated copy.
	TargetName string
	// ArrayDims names the dimension columns when casting into the array
	// engine; when empty, all leading INT columns are used (with a
	// synthesized row-number dimension if there are none).
	ArrayDims []string
	// Dense requests dense storage for array targets.
	Dense bool
}

// CastResult describes a completed migration.
type CastResult struct {
	Object   string
	From, To EngineKind
	Target   string // logical (and physical) name of the migrated copy
	Rows     int
	Bytes    int64
	Elapsed  time.Duration
}

// Cast migrates a catalog object to another engine, registering the
// copy under a new name and returning it. The source object remains in
// place (the paper defers replication/transactions to future work, so
// CAST copies).
func (p *Polystore) Cast(object string, to EngineKind, opts CastOptions) (CastResult, error) {
	start := time.Now()
	info, ok := p.Lookup(object)
	if !ok {
		return CastResult{}, fmt.Errorf("core: unknown object %q", object)
	}
	res := CastResult{Object: object, From: info.Engine, To: to}

	// Direct casts out of the relational engine move columnar end to
	// end: the table's column cache is encoded straight to the wire and
	// decoded straight into a ColumnBatch — no per-row Tuple boxing
	// anywhere on the transport.
	if opts.Mode == CastDirect && info.Engine == EnginePostgres {
		cb, err := p.Relational.DumpBatch(info.Physical)
		if err != nil {
			return res, err
		}
		out, nbytes, err := castDirectBatch(cb)
		if err != nil {
			return res, err
		}
		res.Bytes = nbytes
		target := opts.TargetName
		if target == "" {
			target = p.tempName("cast")
		}
		if err := p.LoadBatch(to, target, out, opts); err != nil {
			return res, err
		}
		res.Target = target
		res.Rows = out.NumRows
		res.Elapsed = time.Since(start)
		return res, nil
	}

	rel, err := p.Dump(object)
	if err != nil {
		return res, err
	}

	// Move the bytes through the selected transport.
	switch opts.Mode {
	case CastDirect:
		var nbytes int64
		rel, nbytes, err = castDirect(rel)
		if err != nil {
			return res, err
		}
		res.Bytes = nbytes
	case CastCSVFile:
		dir := opts.TempDir
		if dir == "" {
			dir = os.TempDir()
		}
		f, err := os.CreateTemp(dir, "bigdawg_cast_*.csv")
		if err != nil {
			return res, err
		}
		path := f.Name()
		defer os.Remove(path)
		bw := bufio.NewWriter(f)
		if err := rel.WriteCSV(bw); err != nil {
			f.Close()
			return res, err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return res, err
		}
		if err := f.Close(); err != nil {
			return res, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return res, err
		}
		res.Bytes = fi.Size()
		rf, err := os.Open(filepath.Clean(path))
		if err != nil {
			return res, err
		}
		rel, err = engine.ReadCSV(bufio.NewReader(rf))
		rf.Close()
		if err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("core: unknown cast mode %d", opts.Mode)
	}

	target := opts.TargetName
	if target == "" {
		target = p.tempName("cast")
	}
	if err := p.Load(to, target, rel, opts); err != nil {
		return res, err
	}
	res.Target = target
	res.Rows = rel.Len()
	res.Elapsed = time.Since(start)
	return res, nil
}

// parallelCastRows is the cardinality at which the direct transport
// switches from a single decoder to parallel batch decoding.
const parallelCastRows = 50_000

// countingWriter tracks how many bytes crossed the transport so CAST
// byte accounting no longer requires materialising the stream.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// castDirect streams rel through the v2 binary wire format with the
// encoder and decoder running concurrently over an io.Pipe, so the
// transport costs max(encode, decode) rather than their sum — the
// paper's direct binary cast, without the seed's full-stream
// bytes.Buffer staging. Large relations additionally fan batch decoding
// out across CPUs.
func castDirect(rel *engine.Relation) (*engine.Relation, int64, error) {
	pr, pw := io.Pipe()
	cw := &countingWriter{w: pw}
	encodeErr := make(chan error, 1)
	go func() {
		err := rel.WriteBinary(cw)
		pw.CloseWithError(err)
		encodeErr <- err
	}()
	var out *engine.Relation
	var err error
	if rel.Len() >= parallelCastRows {
		out, err = engine.ReadBinaryParallel(pr, runtime.GOMAXPROCS(0))
	} else {
		out, err = engine.ReadBinary(pr)
	}
	if err != nil {
		// Unblock the encoder if it is still mid-stream, then reap it.
		pr.CloseWithError(err)
		<-encodeErr
		return nil, 0, err
	}
	if werr := <-encodeErr; werr != nil {
		return nil, 0, werr
	}
	return out, cw.n, nil
}

// castDirectBatch is castDirect for column batches: the same concurrent
// encode/decode over a pipe, but one wire frame decodes into one
// columnar mini-batch, so the transport allocates per frame rather than
// per row.
func castDirectBatch(cb *engine.ColumnBatch) (*engine.ColumnBatch, int64, error) {
	pr, pw := io.Pipe()
	cw := &countingWriter{w: pw}
	encodeErr := make(chan error, 1)
	go func() {
		err := cb.WriteBinary(cw)
		pw.CloseWithError(err)
		encodeErr <- err
	}()
	workers := 1
	if cb.NumRows >= parallelCastRows {
		workers = runtime.GOMAXPROCS(0)
	}
	out, err := engine.ReadBinaryColumnar(pr, workers)
	if err != nil {
		pr.CloseWithError(err)
		<-encodeErr
		return nil, 0, err
	}
	if werr := <-encodeErr; werr != nil {
		return nil, 0, werr
	}
	return out, cw.n, nil
}

// LoadBatch materialises a column batch in the target engine — the
// columnar ingress half of CAST. Relational targets ingest the batch
// directly; other engines receive the arena-materialised relation (two
// allocations for all tuples, not one per row).
func (p *Polystore) LoadBatch(to EngineKind, name string, cb *engine.ColumnBatch, opts CastOptions) error {
	if to == EnginePostgres {
		if err := p.Relational.InsertBatch(name, cb); err != nil {
			return err
		}
		return p.Register(name, to, name)
	}
	return p.Load(to, name, cb.ToRelation(), opts)
}

// Load materialises a relation as a new object in the target engine and
// registers it in the catalog — the ingress half of CAST.
func (p *Polystore) Load(to EngineKind, name string, rel *engine.Relation, opts CastOptions) error {
	switch to {
	case EnginePostgres:
		if err := p.Relational.InsertRelation(name, rel); err != nil {
			return err
		}
	case EngineSciDB:
		dims := opts.ArrayDims
		if len(dims) == 0 {
			dims = leadingIntColumns(rel)
		}
		work := rel
		if len(dims) == 0 {
			// Synthesize a row-number dimension.
			work = withRowNumber(rel)
			dims = []string{"i"}
		}
		a, err := array.FromRelation(name, work, dims, opts.Dense)
		if err != nil {
			return err
		}
		p.ArrayStore.Put(a)
	case EngineAccumulo:
		if err := p.loadKV(name, rel); err != nil {
			return err
		}
	case EngineTileDB:
		a, err := relationToTileDB(name, rel)
		if err != nil {
			return err
		}
		p.mu.Lock()
		p.tile[strings.ToLower(name)] = a
		p.mu.Unlock()
	case EngineSStore:
		return fmt.Errorf("core: cannot CAST into the streaming engine; streams ingest via TCP or Append")
	default:
		return fmt.Errorf("core: unknown target engine %q", to)
	}
	return p.Register(name, to, name)
}

// loadKV stores a relation in the key-value engine. Relations already
// in the kvstore dump shape load natively; anything else maps row i,
// column c to (row=<first column value>, family="data", qualifier=<column
// name>, value=<cell>) — the generic D4M-style exploded layout.
func (p *Polystore) loadKV(name string, rel *engine.Relation) error {
	if isKVDumpShape(rel.Schema) {
		return p.KV.LoadRelation(name, rel)
	}
	if len(rel.Schema.Columns) < 2 {
		return fmt.Errorf("core: relation needs ≥ 2 columns to load into accumulo")
	}
	if err := p.KV.CreateTable(name); err != nil {
		return err
	}
	var es []kvstore.Entry
	for i, t := range rel.Tuples {
		rowKey := t[0].String()
		if rowKey == "" {
			rowKey = fmt.Sprintf("row%08d", i)
		}
		for j := 1; j < len(t); j++ {
			es = append(es, kvstore.Entry{
				Key: kvstore.Key{
					Row: rowKey, Family: "data",
					Qualifier: rel.Schema.Columns[j].Name, Timestamp: int64(i),
				},
				Value: t[j].String(),
			})
		}
	}
	return p.KV.PutBatch(name, es)
}

func isKVDumpShape(s engine.Schema) bool {
	want := []string{"row", "family", "qualifier", "ts", "value"}
	if len(s.Columns) != len(want) {
		return false
	}
	for i, n := range want {
		if !strings.EqualFold(s.Columns[i].Name, n) {
			return false
		}
	}
	return true
}

// leadingIntColumns returns the names of the leading INT columns, which
// serve as array dimensions by convention (at least one non-dimension
// attribute column must remain).
func leadingIntColumns(rel *engine.Relation) []string {
	var dims []string
	for _, c := range rel.Schema.Columns {
		if c.Type != engine.TypeInt {
			break
		}
		dims = append(dims, c.Name)
	}
	if len(dims) == len(rel.Schema.Columns) && len(dims) > 0 {
		dims = dims[:len(dims)-1] // keep the last column as the attribute
	}
	return dims
}

func withRowNumber(rel *engine.Relation) *engine.Relation {
	cols := append([]engine.Column{engine.Col("i", engine.TypeInt)}, rel.Schema.Columns...)
	out := engine.NewRelation(engine.Schema{Columns: cols})
	out.Tuples = make([]engine.Tuple, len(rel.Tuples))
	for i, t := range rel.Tuples {
		row := make(engine.Tuple, 0, len(t)+1)
		row = append(row, engine.NewInt(int64(i)))
		row = append(row, t...)
		out.Tuples[i] = row
	}
	return out
}

// relationToTileDB loads (int dims..., float value) rows into a fresh
// TileDB array.
func relationToTileDB(name string, rel *engine.Relation) (*tiledb.Array, error) {
	if rel.Len() == 0 {
		return nil, fmt.Errorf("core: cannot infer tiledb domain from empty relation")
	}
	nd := len(rel.Schema.Columns) - 1
	if nd < 1 {
		return nil, fmt.Errorf("core: tiledb load needs ≥ 2 columns (dims + value)")
	}
	lo := make([]int64, nd)
	hi := make([]int64, nd)
	for i := 0; i < nd; i++ {
		lo[i], hi[i] = 1<<62, -1<<62
	}
	cells := make([]tiledb.Cell, 0, rel.Len())
	for _, t := range rel.Tuples {
		coords := make([]int64, nd)
		for i := 0; i < nd; i++ {
			coords[i] = t[i].AsInt()
			if coords[i] < lo[i] {
				lo[i] = coords[i]
			}
			if coords[i] > hi[i] {
				hi[i] = coords[i]
			}
		}
		cells = append(cells, tiledb.Cell{Coords: coords, Value: t[nd].AsFloat()})
	}
	a, err := tiledb.NewArray(name, tiledb.Box{Lo: lo, Hi: hi}, 0.5)
	if err != nil {
		return nil, err
	}
	if err := a.Write(cells); err != nil {
		return nil, err
	}
	return a, nil
}

// Migrate moves an object permanently: cast to the target engine under
// the same logical name (with a fresh physical name), then repoint the
// catalog — the operation the monitoring system (§2.1) recommends.
func (p *Polystore) Migrate(object string, to EngineKind, opts CastOptions) (CastResult, error) {
	info, ok := p.Lookup(object)
	if !ok {
		return CastResult{}, fmt.Errorf("core: unknown object %q", object)
	}
	if info.Engine == to {
		return CastResult{Object: object, From: to, To: to, Target: info.Physical}, nil
	}
	opts.TargetName = p.tempName("mig_" + object)
	res, err := p.Cast(object, to, opts)
	if err != nil {
		return res, err
	}
	// Repoint the logical name at the migrated copy.
	p.mu.Lock()
	delete(p.catalog, strings.ToLower(res.Target))
	p.catalog[strings.ToLower(object)] = ObjectInfo{Name: object, Engine: to, Physical: res.Target}
	p.mu.Unlock()
	res.Target = object
	return res, nil
}
