package core

// Concurrency stress: one Polystore, many goroutines mixing reads
// (Query across all islands, with and without CAST), writes (Cast,
// Register/Deregister of worker-private objects) and metadata calls.
// Run under `go test -race` (CI does) — the point is to surface
// catalog and engine races, not to assert timing. Queries touch only
// shared objects that never change plus worker-private names, so every
// operation is expected to succeed even under full interleaving.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
)

func TestConcurrentQueryCastRegister(t *testing.T) {
	p := demoStore(t)
	workers := 8
	iters := 40
	if testing.Short() {
		workers, iters = 4, 15
	}

	queries := []string{
		`RELATIONAL(SELECT * FROM CAST(wf, relation) WHERE v > 1.5)`,
		`RELATIONAL(SELECT COUNT(*) FROM wf WHERE v >= 1)`,
		`ARRAY(aggregate(filter(CAST(patients, array), age > 60), avg(age)))`,
		`TEXT(scan(CAST(patients, text), '1', '3'))`,
		`RELATIONAL(SELECT COUNT(*) AS n FROM CAST(ARRAY(filter(wf, v > 1.5)), relation))`,
		`TEXT(search(notes, 'very sick', 3))`,
		`STREAM(window(vitals))`,
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				switch rng.Intn(5) {
				case 0, 1: // cross-island queries, planner racing itself
					q := queries[rng.Intn(len(queries))]
					if _, err := p.Query(q); err != nil {
						errs <- fmt.Errorf("worker %d: %s: %w", w, q, err)
						return
					}
				case 2: // direct CASTs, pushed and full, cleaned up after
					opts := CastOptions{}
					if rng.Intn(2) == 0 {
						opts.Predicate, opts.Columns = "age > 60", []string{"id", "age"}
					}
					res, err := p.Cast("patients", EnginePostgres, opts)
					if err != nil {
						errs <- fmt.Errorf("worker %d: cast: %w", w, err)
						return
					}
					//lint:ignore templeak hot stress loop drops per iteration on purpose; deferring would hoard workers*iters temp tables
					p.dropTempObjects([]string{res.Target})
				case 3: // churn a worker-private object through the catalog
					name := fmt.Sprintf("stress_%d_%d", w, i)
					rel := engine.NewRelation(engine.NewSchema(
						engine.Col("k", engine.TypeInt), engine.Col("x", engine.TypeFloat)))
					for r := 0; r < 5; r++ {
						_ = rel.Append(engine.Tuple{engine.NewInt(int64(r)), engine.NewFloat(float64(r))})
					}
					if err := p.Load(EnginePostgres, name, rel, CastOptions{}); err != nil {
						errs <- fmt.Errorf("worker %d: load: %w", w, err)
						return
					}
					q := fmt.Sprintf(`RELATIONAL(SELECT COUNT(*) FROM %s WHERE x >= 0)`, name)
					if _, err := p.Query(q); err != nil {
						errs <- fmt.Errorf("worker %d: private query: %w", w, err)
						return
					}
					//lint:ignore templeak hot stress loop drops per iteration on purpose; deferring would hoard workers*iters temp tables
					p.dropTempObjects([]string{name})
				default: // metadata reads racing the writers above
					_ = p.Objects()
					_, _ = p.Lookup("patients")
					_, _ = p.CastStats()
					p.SetPushdown(true) // racing toggles must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The federation must be intact afterwards: shared objects still
	// resolve and a final query still works.
	for _, name := range []string{"patients", "wf", "notes", "vitals"} {
		if _, ok := p.Lookup(name); !ok {
			t.Errorf("shared object %s lost during stress", name)
		}
	}
	if _, err := p.Query(queries[0]); err != nil {
		t.Errorf("post-stress query: %v", err)
	}
}
