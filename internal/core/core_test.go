package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/kvstore"
	"repro/internal/myria"
	"repro/internal/stream"
	"repro/internal/tiledb"
)

// demoStore builds a small federation mirroring the MIMIC II layout:
// patients in Postgres, waveform in SciDB, notes in Accumulo, vitals in
// S-Store.
func demoStore(t *testing.T) *Polystore {
	t.Helper()
	p := New()

	// Postgres: patients.
	if _, err := p.Relational.Execute(`CREATE TABLE patients (id INT PRIMARY KEY, name TEXT, age INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Relational.Execute(
		`INSERT INTO patients VALUES (1,'alice',70),(2,'bob',62),(3,'carol',55)`); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("patients", EnginePostgres, "patients"); err != nil {
		t.Fatal(err)
	}

	// SciDB: waveform samples (patient 1, 8 samples).
	wfRel := engine.NewRelation(engine.NewSchema(
		engine.Col("t", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	for i := 0; i < 8; i++ {
		_ = wfRel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(float64(i) / 2)})
	}
	if err := p.Load(EngineSciDB, "wf", wfRel, CastOptions{Dense: true}); err != nil {
		t.Fatal(err)
	}

	// Accumulo: notes.
	if err := p.KV.CreateTable("notes", "note"); err != nil {
		t.Fatal(err)
	}
	notes := []kvstore.Entry{
		{Key: kvstore.Key{Row: "p1", Family: "note", Qualifier: "d1", Timestamp: 1}, Value: "very sick patient"},
		{Key: kvstore.Key{Row: "p1", Family: "note", Qualifier: "d2", Timestamp: 2}, Value: "still very sick"},
		{Key: kvstore.Key{Row: "p1", Family: "note", Qualifier: "d3", Timestamp: 3}, Value: "very sick again"},
		{Key: kvstore.Key{Row: "p2", Family: "note", Qualifier: "d1", Timestamp: 1}, Value: "doing well"},
	}
	if err := p.KV.PutBatch("notes", notes); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("notes", EngineAccumulo, "notes"); err != nil {
		t.Fatal(err)
	}

	// S-Store: vitals stream.
	if err := p.Streams.CreateStream("vitals", engine.NewSchema(
		engine.Col("patient", engine.TypeInt), engine.Col("v", engine.TypeFloat)), 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Streams.Append("vitals", stream.Record{
			TS:     int64(i),
			Values: engine.Tuple{engine.NewInt(1), engine.NewFloat(float64(i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Register("vitals", EngineSStore, "vitals"); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterValidation(t *testing.T) {
	p := New()
	if err := p.Register("x", "bogus", ""); err == nil {
		t.Error("unknown engine should fail")
	}
	if err := p.Register("x", EnginePostgres, ""); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("X", EnginePostgres, ""); err == nil {
		t.Error("duplicate register should fail")
	}
	info, ok := p.Lookup("x")
	if !ok || info.Physical != "x" {
		t.Errorf("lookup: %+v %v", info, ok)
	}
	p.Deregister("x")
	if _, ok := p.Lookup("x"); ok {
		t.Error("deregistered object still resolvable")
	}
}

func TestParseScope(t *testing.T) {
	good := map[string]Island{
		"RELATIONAL(SELECT 1)":      IslandRelational,
		"array(scan(wf))":           IslandArray,
		"TEXT(search(notes,'x',1))": IslandAccumulo,
		"STREAM(window(vitals))":    IslandSStore,
		"postgres(SELECT * FROM t)": IslandPostgres,
		"D4M(assoc(notes))":         IslandD4M,
	}
	for q, island := range good {
		sq, err := parseScope(q)
		if err != nil || sq.island != island {
			t.Errorf("parseScope(%q) = %v, %v", q, sq.island, err)
		}
	}
	for _, bad := range []string{"", "SELECT 1", "NOPE(x)", "RELATIONAL(a(b)", "(x)"} {
		if _, err := parseScope(bad); err == nil {
			t.Errorf("parseScope(%q) should fail", bad)
		}
	}
}

func TestDegenerateIslands(t *testing.T) {
	p := demoStore(t)
	rel, err := p.Query(`POSTGRES(SELECT name FROM patients WHERE age > 60 ORDER BY age)`)
	if err != nil || rel.Len() != 2 || rel.Tuples[0][0].S != "bob" {
		t.Errorf("postgres island: %v %v", rel, err)
	}
	rel, err = p.Query(`SCIDB(aggregate(wf, sum(v)))`)
	if err != nil || rel.Tuples[0][0].AsFloat() != 14 { // 0+0.5+...+3.5
		t.Errorf("scidb island: %v %v", rel, err)
	}
	rel, err = p.Query(`TEXT(search(notes, 'very sick', 3))`)
	if err != nil || rel.Len() != 1 || rel.Tuples[0][0].S != "p1" {
		t.Errorf("text island: %v %v", rel, err)
	}
	rel, err = p.Query(`TEXT(get(notes, 'p2'))`)
	if err != nil || rel.Len() != 1 {
		t.Errorf("text get: %v %v", rel, err)
	}
	rel, err = p.Query(`TEXT(count(notes))`)
	if err != nil || rel.Tuples[0][0].I != 4 {
		t.Errorf("text count: %v %v", rel, err)
	}
	rel, err = p.Query(`STREAM(window(vitals))`)
	if err != nil || rel.Len() != 5 {
		t.Errorf("stream window: %v %v", rel, err)
	}
	rel, err = p.Query(`STREAM(aggregate(vitals, avg, v))`)
	if err != nil || rel.Tuples[0][0].AsFloat() != 2 {
		t.Errorf("stream aggregate: %v %v", rel, err)
	}
	rel, err = p.Query(`STREAM(appended(vitals))`)
	if err != nil || rel.Tuples[0][0].I != 5 {
		t.Errorf("stream appended: %v %v", rel, err)
	}
}

func TestIslandErrors(t *testing.T) {
	p := demoStore(t)
	bad := []string{
		`TEXT(search(notes))`,
		`TEXT(frobnicate(notes))`,
		`STREAM(window())`,
		`STREAM(nope(vitals))`,
		`RELATIONAL(INSERT INTO patients VALUES (9,'x',1))`, // DML not allowed
		`MYRIA(anything)`,
		`SCIDB(scan(missing_array))`,
	}
	for _, q := range bad {
		if _, err := p.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestCastArrayToRelation(t *testing.T) {
	p := demoStore(t)
	// The paper's example: a relational query over an array via CAST.
	rel, err := p.Query(`RELATIONAL(SELECT * FROM CAST(wf, relation) WHERE v > 1.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 { // v = 2.0, 2.5, 3.0, 3.5
		t.Errorf("cast query: %v", rel)
	}
}

func TestCastRelationToArray(t *testing.T) {
	p := demoStore(t)
	rel, err := p.Query(`ARRAY(aggregate(CAST(patients, array), max(age)))`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].AsFloat() != 70 {
		t.Errorf("relation→array cast: %v", rel)
	}
}

func TestRelationalIslandLocationTransparency(t *testing.T) {
	p := demoStore(t)
	// No CAST: the island shims the array object in transparently.
	rel, err := p.Query(`RELATIONAL(SELECT COUNT(*) FROM wf WHERE v >= 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].I != 6 {
		t.Errorf("transparent shim: %v", rel)
	}
	// Join across engines: Postgres patients × SciDB waveform.
	rel, err = p.Query(`RELATIONAL(SELECT p.name, COUNT(*) AS n FROM patients p JOIN wf w ON p.id = 1 WHERE w.v > 1 GROUP BY p.name)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 { // all patients join (p.id=1 only restricts..) — actually ON p.id = 1 keeps only alice
		// Recheck: ON p.id = 1 is not an equi-join between sides; nested loop
		// keeps rows where p.id=1, so only alice appears.
		if rel.Len() != 1 || rel.Tuples[0][0].S != "alice" {
			t.Errorf("cross-engine join: %v", rel)
		}
	}
}

func TestArrayIslandLocationTransparency(t *testing.T) {
	p := demoStore(t)
	// patients lives in Postgres; the ARRAY island shims it in. Leading
	// INT column (id) becomes the dimension.
	rel, err := p.Query(`ARRAY(aggregate(patients, avg(age)))`)
	if err != nil {
		t.Fatal(err)
	}
	want := (70.0 + 62 + 55) / 3
	if got := rel.Tuples[0][0].AsFloat(); got != want {
		t.Errorf("array shim avg: %v want %v", got, want)
	}
}

func TestNestedIslandQueryInCast(t *testing.T) {
	p := demoStore(t)
	// Inner ARRAY query feeds the outer RELATIONAL scope — a multi-scope
	// cross-island pipeline (§2.1 "express specification using any
	// number of island languages").
	q := `RELATIONAL(SELECT COUNT(*) AS n FROM CAST(ARRAY(filter(wf, v > 1.5)), relation))`
	rel, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][0].I != 4 {
		t.Errorf("nested island cast: %v", rel)
	}
}

func TestCastToKV(t *testing.T) {
	p := demoStore(t)
	res, err := p.Cast("patients", EngineAccumulo, CastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 patients × 2 non-key columns = 6 entries.
	n, err := p.KV.Len(res.Target)
	if err != nil || n != 6 {
		t.Errorf("kv cast entries: %d %v", n, err)
	}
	// And back out through the text island.
	rel, err := p.Query(`TEXT(get(` + res.Target + `, '1'))`)
	if err != nil || rel.Len() != 2 {
		t.Errorf("kv cast readback: %v %v", rel, err)
	}
}

func TestCastToTileDB(t *testing.T) {
	p := demoStore(t)
	res, err := p.Cast("wf", EngineTileDB, CastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.TileDBArray(res.Target)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := a.Get([]int64{4})
	if err != nil || !ok || v != 2.0 {
		t.Errorf("tiledb cast cell: %v %v %v", v, ok, err)
	}
	// Dump back out.
	rel, err := p.Dump(res.Target)
	if err != nil || rel.Len() != 8 {
		t.Errorf("tiledb dump: %v %v", rel, err)
	}
}

func TestCastModesEquivalent(t *testing.T) {
	p := demoStore(t)
	direct, err := p.Cast("patients", EngineSciDB, CastOptions{Mode: CastDirect})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := p.Cast("patients", EngineSciDB, CastOptions{Mode: CastCSVFile, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Rows != csv.Rows || direct.Rows != 3 {
		t.Errorf("cast modes rows: %d vs %d", direct.Rows, csv.Rows)
	}
	if direct.Bytes <= 0 || csv.Bytes <= 0 {
		t.Errorf("cast byte accounting: %d %d", direct.Bytes, csv.Bytes)
	}
	r1, _ := p.Query(`SCIDB(aggregate(` + direct.Target + `, sum(age)))`)
	r2, _ := p.Query(`SCIDB(aggregate(` + csv.Target + `, sum(age)))`)
	if r1.Tuples[0][0].AsFloat() != r2.Tuples[0][0].AsFloat() {
		t.Error("cast modes produced different data")
	}
}

func TestCastErrors(t *testing.T) {
	p := demoStore(t)
	if _, err := p.Cast("nope", EnginePostgres, CastOptions{}); err == nil {
		t.Error("unknown object should fail")
	}
	if _, err := p.Cast("patients", EngineSStore, CastOptions{}); err == nil {
		t.Error("cast into stream engine should fail")
	}
	if _, err := p.Query(`RELATIONAL(SELECT * FROM CAST(wf))`); err == nil {
		t.Error("CAST arity should fail")
	}
	if _, err := p.Query(`RELATIONAL(SELECT * FROM CAST(wf, hologram))`); err == nil {
		t.Error("unknown CAST target should fail")
	}
}

func TestMigrateRepointsCatalog(t *testing.T) {
	p := demoStore(t)
	res, err := p.Migrate("wf", EnginePostgres, CastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != "wf" {
		t.Errorf("migrate target: %+v", res)
	}
	info, _ := p.Lookup("wf")
	if info.Engine != EnginePostgres {
		t.Errorf("catalog not repointed: %+v", info)
	}
	// Queries keep working against the new home.
	rel, err := p.Query(`RELATIONAL(SELECT COUNT(*) FROM wf)`)
	if err != nil || rel.Tuples[0][0].I != 8 {
		t.Errorf("post-migration query: %v %v", rel, err)
	}
	// Migrating to the current home is a no-op.
	res2, err := p.Migrate("wf", EnginePostgres, CastOptions{})
	if err != nil || res2.From != EnginePostgres {
		t.Errorf("idempotent migrate: %+v %v", res2, err)
	}
}

func TestD4MIsland(t *testing.T) {
	p := demoStore(t)
	// Edge list in Postgres.
	if _, err := p.Relational.Execute(`CREATE TABLE edges (row TEXT, col TEXT, val FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Relational.Execute(
		`INSERT INTO edges VALUES ('a','b',1),('b','c',1),('c','d',1),('a','c',1)`); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("edges", EnginePostgres, "edges"); err != nil {
		t.Fatal(err)
	}
	rel, err := p.Query(`D4M(assoc(edges))`)
	if err != nil || rel.Len() != 4 {
		t.Fatalf("assoc: %v %v", rel, err)
	}
	rel, err = p.Query(`D4M(multiply(assoc(edges), assoc(edges)))`)
	if err != nil || rel.Len() != 3 { // 2-hop: a→c, a→d, b→d
		t.Errorf("multiply: %v %v", rel, err)
	}
	rel, err = p.Query(`D4M(bfs(assoc(edges), 'a', 5))`)
	if err != nil || rel.Len() != 4 {
		t.Fatalf("bfs: %v %v", rel, err)
	}
	rel, err = p.Query(`D4M(sumrows(assoc(edges)))`)
	if err != nil || rel.Len() != 3 {
		t.Errorf("sumrows: %v %v", rel, err)
	}
	rel, err = p.Query(`D4M(filter(assoc(edges), '>', 0.5))`)
	if err != nil || rel.Len() != 4 {
		t.Errorf("filter: %v %v", rel, err)
	}
	// Accumulo notes as an associative array (D4M's home mapping).
	rel, err = p.Query(`D4M(assoc(notes))`)
	if err != nil || rel.Len() != 4 {
		t.Errorf("kv assoc: %v %v", rel, err)
	}
	for _, bad := range []string{
		`D4M(assoc())`, `D4M(filter(assoc(edges), '~', 1))`,
		`D4M(bfs(assoc(edges), 'a', 'x'))`, `D4M(nosuch(assoc(edges)))`,
	} {
		if _, err := p.Query(bad); err == nil {
			t.Errorf("Query(%q) should fail", bad)
		}
	}
}

func TestMyriaIsland(t *testing.T) {
	p := demoStore(t)
	// A Myria plan joining a Postgres table with the SciDB array.
	plan := myria.GroupBy{
		Child: myria.Select{
			Child: myria.Join{
				Left:     myria.Scan{Name: "patients"},
				Right:    myria.Scan{Name: "wf"},
				LeftCol:  "id",
				RightCol: "t", // joins patient ids 1..3 with sample idx
			},
			Pred: "v >= 0.5",
		},
		Keys: []string{"name"},
		Aggs: []myria.AggSpec{{Kind: "count", As: "n"}},
	}
	rel, stats, err := p.ExecuteMyria(plan)
	if err != nil {
		t.Fatal(err)
	}
	// t=1 (v=0.5): alice... ids 1,2,3 join samples 1,2,3 with v .5,1,1.5 —
	// all ≥ .5 → three groups of 1.
	if rel.Len() != 3 {
		t.Errorf("myria result: %v", rel)
	}
	if stats.RowsProcessed == 0 {
		t.Error("myria stats empty")
	}
}

func TestObjectsListing(t *testing.T) {
	p := demoStore(t)
	objs := p.Objects()
	if len(objs) != 4 {
		t.Fatalf("objects: %v", objs)
	}
	names := make([]string, len(objs))
	for i, o := range objs {
		names[i] = o.Name
	}
	if !strings.HasPrefix(strings.Join(names, ","), "notes,patients") {
		t.Errorf("sorted objects: %v", names)
	}
	if len(Islands()) != 8 {
		t.Errorf("the reference implementation hosts 8 islands, got %d", len(Islands()))
	}
}

func TestTileDBRegistration(t *testing.T) {
	p := New()
	a, err := tiledb.NewArray("sparse_m", tiledb.Box{Lo: []int64{0, 0}, Hi: []int64{9, 9}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Write([]tiledb.Cell{{Coords: []int64{1, 2}, Value: 3}})
	if err := p.PutTileDB(a); err != nil {
		t.Fatal(err)
	}
	rel, err := p.Dump("sparse_m")
	if err != nil || rel.Len() != 1 {
		t.Errorf("tiledb dump: %v %v", rel, err)
	}
	if _, err := p.TileDBArray("missing"); err == nil {
		t.Error("missing tiledb array should fail")
	}
}
