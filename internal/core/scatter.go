package core

// Scatter-gather execution over a sharded federation. A sharded object
// is registered once on the coordinator (RegisterSharded) with a
// partitioning Spec (internal/shard) and the list of shard endpoints
// that hold its partitions; each shard node is an ordinary polystore —
// usually reached over BDWQ via internal/server/client — whose copy of
// the object carries the hidden shard.GposColumn recording every row's
// global position, so gathered results restore the exact original row
// order (order is semantic here: casting into the array island derives
// coordinates from row position).
//
// Queries that mention a sharded object are intercepted before local
// planning (executeBody in islands.go) and take one of two paths:
//
//   - Pushdown scatter: narrow relational shapes (single sharded table,
//     no joins/DISTINCT/HAVING/ORDER BY/LIMIT) run on every shard with
//     the partition substituted for the table, then merge — plain
//     projections gather by global position, aggregates merge partial
//     states (COUNT sums, SUM/MIN/MAX fold) per group, with group order
//     restored from the minimum global position in each group.
//   - Gather fallback: everything else fetches each referenced object's
//     partitions in parallel, reassembles them into a local temp table,
//     rewrites the body to the temp names, and runs the normal local
//     path — trading data movement for full generality.
//
// A failed or cancelled shard surfaces as *ShardFailure naming the
// object and shard index; the fan-out always waits for every in-flight
// shard response before returning, so no goroutine outlives the call.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/trace"
)

// ShardEndpoint is one shard node's query surface. *client.Client and
// *client.Endpoint satisfy it; tests may use in-process fakes.
type ShardEndpoint interface {
	Query(ctx context.Context, q string) (*engine.Relation, error)
}

// Placement records where a sharded object's partitions live: the
// partitioning spec, the logical schema (without the hidden
// shard.GposColumn), and for each partition the index of its endpoint
// in the coordinator's endpoint list.
type Placement struct {
	Spec   shard.Spec
	Schema engine.Schema
	Shards []int
}

// ShardFailure is the typed partial-failure error for scatter-gather: a
// query fanned across an object's shards and at least one shard failed
// (or the context was cancelled while it was in flight).
type ShardFailure struct {
	Object string
	Shard  int
	Err    error
}

func (e *ShardFailure) Error() string {
	return fmt.Sprintf("core: shard %d of %q: %v", e.Shard, e.Object, e.Err)
}

func (e *ShardFailure) Unwrap() error { return e.Err }

// SetShardEndpoints installs the coordinator's shard endpoint list.
// Placement.Shards values index into it. Call before RegisterSharded.
func (p *Polystore) SetShardEndpoints(eps ...ShardEndpoint) {
	p.mu.Lock()
	p.shardEps = append([]ShardEndpoint(nil), eps...)
	p.mu.Unlock()
}

// RegisterSharded adds a partitioned object to the catalog: logically
// one relational table, physically spec.Shards partitions living on the
// given endpoints (each already loaded with its partition — including
// the hidden shard.GposColumn — under the same logical name). schema is
// the logical schema, without shard.GposColumn.
func (p *Polystore) RegisterSharded(name string, spec shard.Spec, schema engine.Schema, shards ...int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if schema.Index(spec.Key) < 0 {
		return fmt.Errorf("core: shard key %q not in schema of %q", spec.Key, name)
	}
	if schema.Index(shard.GposColumn) >= 0 {
		return fmt.Errorf("core: logical schema of %q must not contain %s", name, shard.GposColumn)
	}
	if len(shards) != spec.Shards {
		return fmt.Errorf("core: %q needs %d shard endpoints, got %d", name, spec.Shards, len(shards))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, idx := range shards {
		if idx < 0 || idx >= len(p.shardEps) {
			return fmt.Errorf("core: shard endpoint index %d out of range (have %d endpoints)", idx, len(p.shardEps))
		}
	}
	key := strings.ToLower(name)
	if _, ok := p.catalog[key]; ok {
		return fmt.Errorf("core: object %q already registered", name)
	}
	p.catalog[key] = ObjectInfo{Name: name, Engine: EnginePostgres, Physical: name}
	p.placements[key] = Placement{Spec: spec, Schema: schema, Shards: append([]int(nil), shards...)}
	return nil
}

// DeregisterSharded removes a sharded object's catalog entry and
// placement (partitions on the shard nodes are left to the caller).
func (p *Polystore) DeregisterSharded(name string) {
	key := strings.ToLower(name)
	p.mu.Lock()
	delete(p.catalog, key)
	delete(p.placements, key)
	p.mu.Unlock()
}

// PlacementOf reports the placement of a sharded object, if any.
func (p *Polystore) PlacementOf(name string) (Placement, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pl, ok := p.placements[strings.ToLower(name)]
	return pl, ok
}

func (p *Polystore) placementOf(name string) (Placement, bool) { return p.PlacementOf(name) }

// shardedRefs lists the sharded objects a body mentions (whole-word,
// case-insensitive, outside quotes), sorted for determinism.
func (p *Polystore) shardedRefs(body string) []string {
	p.mu.RLock()
	names := make([]string, 0, len(p.placements))
	for key := range p.placements {
		names = append(names, key)
	}
	p.mu.RUnlock()
	var refs []string
	for _, name := range names {
		if containsWord(body, name) {
			refs = append(refs, name)
		}
	}
	sort.Strings(refs)
	return refs
}

// endpointsFor resolves a placement's endpoint indexes to live
// endpoints.
func (p *Polystore) endpointsFor(pl Placement) ([]ShardEndpoint, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	eps := make([]ShardEndpoint, len(pl.Shards))
	for i, idx := range pl.Shards {
		if idx < 0 || idx >= len(p.shardEps) {
			return nil, fmt.Errorf("core: shard endpoint index %d out of range (have %d endpoints)", idx, len(p.shardEps))
		}
		eps[i] = p.shardEps[idx]
	}
	return eps, nil
}

// scatterExecute runs a body that references sharded objects: pushdown
// scatter when the shape allows, gather-then-run otherwise.
func (p *Polystore) scatterExecute(ctx context.Context, island Island, body string, names []string) (*engine.Relation, error) {
	ctx, span := trace.Start(ctx, "scatter")
	defer span.End()
	span.SetStr("objects", strings.Join(names, ","))
	p.om.scatterCount.Inc()
	if island == IslandRelational || island == IslandPostgres {
		rel, handled, err := p.tryScatterPushdown(ctx, island, body, names)
		if handled {
			span.SetStr("mode", "pushdown")
			p.om.scatterPushed.Inc()
			return rel, err
		}
	}
	span.SetStr("mode", "gather")
	p.om.scatterGather.Inc()
	var temps []string
	defer func() { p.dropTempObjects(temps) }()
	rewritten := body
	for _, name := range names {
		tmp, err := p.gatherToTemp(ctx, name)
		if tmp != "" {
			temps = append(temps, tmp)
		}
		if err != nil {
			return nil, err
		}
		rewritten = replaceWord(rewritten, name, tmp)
	}
	return p.executeLocal(ctx, island, rewritten)
}

// gatherObject fetches every partition of a sharded object in parallel
// and reassembles the original relation, in original row order, without
// the hidden position column.
func (p *Polystore) gatherObject(ctx context.Context, name string) (*engine.Relation, error) {
	pl, ok := p.placementOf(name)
	if !ok {
		return nil, fmt.Errorf("core: object %q is not sharded", name)
	}
	cols := append(pl.Schema.Names(), shard.GposColumn)
	q := fmt.Sprintf("POSTGRES(SELECT %s FROM %s)", strings.Join(cols, ", "), name)
	parts, err := p.scatterFetch(ctx, name, pl, func(int) string { return q })
	if err != nil {
		return nil, err
	}
	return shard.Gather(parts)
}

// gatherToTemp gathers a sharded object into a local temp table,
// returning its name (non-empty even on load failure, so callers can
// reclaim a partial landing).
func (p *Polystore) gatherToTemp(ctx context.Context, name string) (string, error) {
	rel, err := p.gatherObject(ctx, name)
	if err != nil {
		return "", err
	}
	tmp := p.tempName("shard")
	if err := p.LoadCtx(ctx, EnginePostgres, tmp, rel, CastOptions{}); err != nil {
		return tmp, err
	}
	return tmp, nil
}

// scatterFetch runs queryFor(i) on shard i of a placement, in parallel.
// It always waits for every shard response (no goroutine outlives the
// call) and wraps the first failure as *ShardFailure.
func (p *Polystore) scatterFetch(ctx context.Context, object string, pl Placement, queryFor func(int) string) ([]*engine.Relation, error) {
	eps, err := p.endpointsFor(pl)
	if err != nil {
		return nil, err
	}
	parts := make([]*engine.Relation, len(eps))
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep ShardEndpoint) {
			defer wg.Done()
			parts[i], errs[i] = ep.Query(ctx, queryFor(i))
		}(i, ep)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, &ShardFailure{Object: object, Shard: pl.Shards[i], Err: e}
		}
	}
	return parts, nil
}

// inlineRelationalCasts rewrites CAST(<sharded-object>, <relational
// target>) terms to the bare object name — on a shard the partition
// already lives in the relational engine, so the cast is the identity.
// Any other CAST term makes the body ineligible for pushdown (ok =
// false); the gather fallback handles it with full generality.
func (p *Polystore) inlineRelationalCasts(body string) (string, bool) {
	for from := 0; ; {
		start, end, found := findCall(body, "CAST", from)
		if !found {
			return body, true
		}
		inner := body[start+len("CAST(") : end-1]
		args := splitTopArgs(inner)
		if len(args) != 2 {
			return "", false
		}
		src := strings.TrimSpace(args[0])
		if _, sharded := p.placementOf(src); !sharded {
			return "", false
		}
		if eng, err := castTargetEngine(args[1]); err != nil || eng != EnginePostgres {
			return "", false
		}
		body = body[:start] + src + body[end:]
		from = start + len(src)
	}
}

// scatterAgg describes how to merge one projection item's per-shard
// partials.
var scatterAggOps = map[string]shard.MergeOp{
	"COUNT": shard.MergeCount,
	"SUM":   shard.MergeSum,
	"MIN":   shard.MergeMin,
	"MAX":   shard.MergeMax,
}

// tryScatterPushdown attempts to run a relational body by fanning it to
// every shard and merging, without moving the partitions. handled=false
// means the shape is out of scope and the caller should gather instead;
// handled=true returns the final (or failed) result.
func (p *Polystore) tryScatterPushdown(ctx context.Context, island Island, body string, names []string) (*engine.Relation, bool, error) {
	if len(names) != 1 {
		return nil, false, nil
	}
	name := names[0]
	pl, ok := p.placementOf(name)
	if !ok {
		return nil, false, nil
	}
	inlined, ok := p.inlineRelationalCasts(body)
	if !ok {
		return nil, false, nil
	}
	stmt, err := relational.Parse(inlined)
	if err != nil {
		return nil, false, nil
	}
	sel, ok := stmt.(*relational.Select)
	if !ok {
		return nil, false, nil
	}
	if sel.From == nil || !strings.EqualFold(sel.From.Name, name) ||
		len(sel.Joins) > 0 || sel.Distinct || sel.Having != nil ||
		len(sel.OrderBy) > 0 || sel.Limit >= 0 || sel.Offset > 0 {
		return nil, false, nil
	}
	if sel.Where != nil && relational.HasAggregate(sel.Where) {
		return nil, false, nil
	}
	grouped := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && relational.HasAggregate(item.Expr) {
			grouped = true
		}
	}
	if grouped {
		return p.scatterAggregate(ctx, island, name, pl, sel)
	}
	return p.scatterPlain(ctx, island, name, pl, sel)
}

// scatterPlain pushes a projection+filter to every shard, carrying the
// hidden position column through, and gathers by global position.
func (p *Polystore) scatterPlain(ctx context.Context, island Island, name string, pl Placement, sel *relational.Select) (*engine.Relation, bool, error) {
	var items, outNames []string
	for _, item := range sel.Items {
		if item.Star {
			if item.Table != "" {
				return nil, false, nil
			}
			for _, c := range pl.Schema.Columns {
				items = append(items, c.Name)
				outNames = append(outNames, c.Name)
			}
			continue
		}
		items = append(items, relational.FormatExpr(item.Expr))
		outNames = append(outNames, relational.ItemName(item))
	}
	q := p.shardSQL(island, name, sel, append(items, shard.GposColumn), "")
	parts, err := p.scatterFetch(ctx, name, pl, func(int) string { return q })
	if err != nil {
		return nil, true, err
	}
	rel, err := shard.Gather(parts)
	if err != nil {
		return nil, true, err
	}
	return renameColumns(rel, outNames), true, nil
}

// scatterAggregate pushes an aggregation to every shard — hidden group
// keys first, then the original items as partials, then the group's
// minimum global position — and merges partial states per group,
// restoring baseline (first-seen) group order from the position column.
func (p *Polystore) scatterAggregate(ctx context.Context, island Island, name string, pl Placement, sel *relational.Select) (*engine.Relation, bool, error) {
	keys := make([]relational.ColumnRef, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		cr, ok := g.(relational.ColumnRef)
		if !ok {
			return nil, false, nil
		}
		keys[i] = cr
	}
	var items []string
	outNames := make([]string, 0, len(sel.Items))
	// ops covers the non-key columns: the original items (group-key
	// items merge as identity) plus the trailing position column.
	ops := make([]shard.MergeOp, 0, len(sel.Items)+1)
	for i := range keys {
		items = append(items, fmt.Sprintf("%s AS __sk%d", relational.FormatExpr(keys[i]), i))
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil, false, nil
		}
		op, ok := scatterItemOp(item.Expr, keys)
		if !ok {
			return nil, false, nil
		}
		items = append(items, relational.FormatExpr(item.Expr))
		outNames = append(outNames, relational.ItemName(item))
		ops = append(ops, op)
	}
	items = append(items, fmt.Sprintf("MIN(%s) AS __sgp", shard.GposColumn))
	ops = append(ops, shard.MergeMin)
	var groupBy strings.Builder
	for i := range keys {
		if i > 0 {
			groupBy.WriteString(", ")
		}
		groupBy.WriteString(relational.FormatExpr(keys[i]))
	}
	q := p.shardSQL(island, name, sel, items, groupBy.String())
	parts, err := p.scatterFetch(ctx, name, pl, func(int) string { return q })
	if err != nil {
		return nil, true, err
	}
	merged, err := shard.MergeAggregate(parts, len(keys), ops)
	if err != nil {
		return nil, true, err
	}
	// Baseline group order is first-seen row order; the merged __sgp
	// column (last) holds each group's minimum global row position.
	gp := len(merged.Schema.Columns) - 1
	sort.SliceStable(merged.Tuples, func(i, j int) bool {
		return merged.Tuples[i][gp].I < merged.Tuples[j][gp].I
	})
	// Project away the hidden keys and the position column.
	lo, hi := len(keys), len(merged.Schema.Columns)-1
	out := engine.NewRelation(engine.Schema{Columns: append([]engine.Column(nil), merged.Schema.Columns[lo:hi]...)})
	for _, t := range merged.Tuples {
		out.Tuples = append(out.Tuples, t[lo:hi])
	}
	return renameColumns(out, outNames), true, nil
}

// scatterItemOp classifies one aggregate-query projection item: a bare
// column reference must be a group key (merged as identity), and an
// aggregate call must have a distributive partial-merge (COUNT, SUM,
// MIN, MAX — no DISTINCT). Anything else disqualifies pushdown.
func scatterItemOp(e relational.Expr, keys []relational.ColumnRef) (shard.MergeOp, bool) {
	switch ex := e.(type) {
	case relational.ColumnRef:
		for _, k := range keys {
			if strings.EqualFold(k.Name, ex.Name) {
				return shard.MergeKey, true
			}
		}
	case relational.FuncCall:
		op, ok := scatterAggOps[ex.Name]
		if !ok || ex.Distinct {
			return 0, false
		}
		for _, a := range ex.Args {
			if relational.HasAggregate(a) {
				return 0, false
			}
		}
		return op, true
	}
	return 0, false
}

// shardSQL renders the per-shard query sent over the wire: same island,
// the shard's partition substituted for the table, the given projection
// items, and the original WHERE.
func (p *Polystore) shardSQL(island Island, name string, sel *relational.Select, items []string, groupBy string) string {
	var sb strings.Builder
	sb.WriteString(string(island))
	sb.WriteString("(SELECT ")
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(name)
	if sel.From.Alias != "" {
		sb.WriteString(" ")
		sb.WriteString(sel.From.Alias)
	}
	if sel.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(relational.FormatExpr(sel.Where))
	}
	if groupBy != "" {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(groupBy)
	}
	sb.WriteString(")")
	return sb.String()
}

// renameColumns overwrites a result's column names with the baseline
// output names (shard-side aliases and reformatted expressions would
// otherwise leak into the merged schema).
func renameColumns(rel *engine.Relation, names []string) *engine.Relation {
	if len(names) != len(rel.Schema.Columns) {
		return rel
	}
	cols := make([]engine.Column, len(names))
	for i, c := range rel.Schema.Columns {
		c.Name = names[i]
		cols[i] = c
	}
	rel.Schema = engine.Schema{Columns: cols}
	return rel
}

// IsShardFailure reports whether err wraps a *ShardFailure, returning
// it.
func IsShardFailure(err error) (*ShardFailure, bool) {
	var sf *ShardFailure
	if errors.As(err, &sf) {
		return sf, true
	}
	return nil, false
}
