package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
)

// TestCastRoundTripPreservesData drives an object through every engine
// that can hold it and back, checking the data survives each hop:
// postgres → scidb → postgres, postgres → accumulo → postgres,
// postgres → tiledb → postgres.
func TestCastRoundTripPreservesData(t *testing.T) {
	paths := [][]EngineKind{
		{EngineSciDB, EnginePostgres},
		{EngineTileDB, EnginePostgres},
	}
	for _, path := range paths {
		t.Run(fmt.Sprintf("%v", path), func(t *testing.T) {
			p := New()
			rel := engine.NewRelation(engine.NewSchema(
				engine.Col("k", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
			for i := 0; i < 200; i++ {
				_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(float64(i) * 1.5)})
			}
			if err := p.Relational.InsertRelation("obj", rel); err != nil {
				t.Fatal(err)
			}
			if err := p.Register("obj", EnginePostgres, "obj"); err != nil {
				t.Fatal(err)
			}
			current := "obj"
			for _, hop := range path {
				res, err := p.Cast(current, hop, CastOptions{})
				if err != nil {
					t.Fatalf("cast %s → %s: %v", current, hop, err)
				}
				current = res.Target
			}
			got, err := p.Dump(current)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != rel.Len() {
				t.Fatalf("cardinality after round trip: %d, want %d", got.Len(), rel.Len())
			}
			got.SortBy(0)
			for i, row := range got.Tuples {
				if row[0].AsInt() != int64(i) || row[1].AsFloat() != float64(i)*1.5 {
					t.Fatalf("row %d corrupted: %v", i, row)
				}
			}
		})
	}
}

// TestAccumuloRoundTripPreservesCells checks the exploded KV layout
// keeps every cell value addressable.
func TestAccumuloRoundTripPreservesCells(t *testing.T) {
	p := New()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("k", engine.TypeInt), engine.Col("v", engine.TypeFloat),
		engine.Col("label", engine.TypeString)))
	for i := 0; i < 50; i++ {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)),
			engine.NewFloat(float64(i) / 2), engine.NewString(fmt.Sprintf("L%d", i))})
	}
	if err := p.Relational.InsertRelation("obj", rel); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("obj", EnginePostgres, "obj"); err != nil {
		t.Fatal(err)
	}
	res, err := p.Cast("obj", EngineAccumulo, CastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	es, err := p.KV.Get(res.Target, "17")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 { // v and label cells
		t.Fatalf("cells for row 17: %d", len(es))
	}
	found := map[string]string{}
	for _, e := range es {
		found[e.Key.Qualifier] = e.Value
	}
	if found["v"] != "8.5" || found["label"] != "L17" {
		t.Errorf("cell values: %v", found)
	}
}

// TestConcurrentQueriesAndCasts exercises the catalog and engines under
// parallel readers with interleaved casts.
func TestConcurrentQueriesAndCasts(t *testing.T) {
	p := demoStore(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := p.Query(`POSTGRES(SELECT COUNT(*) FROM patients)`); err != nil {
					errs <- err
					return
				}
				if _, err := p.Query(`SCIDB(aggregate(wf, sum(v)))`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := p.Cast("patients", EngineSciDB, CastOptions{})
				if err != nil {
					errs <- err
					return
				}
				_ = p.ArrayStore.Remove(res.Target)
				p.Deregister(res.Target)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
