package core

// The chaos-injection harness. It reuses the equivalence generator's
// seeded federations and queries, runs every query fault-free for a
// reference answer, then re-runs it on a second identical polystore
// under a deterministic random fault schedule (errors, delays and
// partial writes across every cast-pipeline failpoint). The invariant
// for every query, faulted or not:
//
//   - the catalog and every engine's object listing and contents are
//     identical to their pre-query state afterwards (atomic CASTs leak
//     nothing, on success or failure), and
//   - the query either succeeds — possibly via retry — with exactly the
//     fault-free result, or fails with the injected fault in its error
//     chain.
//
// Reproduce a failure with:
//
//	go test ./internal/core -run TestChaosRandomized -chaos-seed <N>

import (
	"errors"
	"flag"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

var (
	chaosSeed  = flag.Int64("chaos-seed", -1, "run the chaos harness for exactly this seed")
	chaosSeeds = flag.Int("chaos-seeds", 0, "number of seeds the chaos harness covers (0 = default)")
)

// chaosRetryPolicy keeps backoff waits microscopic so a 200-seed
// matrix finishes quickly; attempts match the default policy.
var chaosRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   100 * time.Microsecond,
	MaxDelay:    time.Millisecond,
}

func TestChaosRandomized(t *testing.T) {
	defer fault.Reset()
	if *chaosSeed >= 0 {
		if fired := runChaosSeed(t, *chaosSeed); fired == 0 {
			t.Logf("seed %d: schedule never fired (all specs beyond the query's failpoint traffic)", *chaosSeed)
		}
		return
	}
	n := *chaosSeeds
	if n == 0 {
		n = 200
		if testing.Short() {
			n = 40
		}
	}
	totalFired := 0
	for s := 0; s < n; s++ {
		seed := int64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			totalFired += runChaosSeed(t, seed)
		})
	}
	// The matrix is meaningless if schedules never actually trigger.
	if !t.Failed() && totalFired < n {
		t.Errorf("chaos matrix of %d seeds fired only %d faults — schedules are not reaching the pipeline", n, totalFired)
	}
}

// runChaosSeed runs one seed of the chaos matrix and reports how many
// injected faults actually fired.
func runChaosSeed(t *testing.T, seed int64) int {
	t.Helper()
	g := NewFedGen(seed)
	objs := g.Catalog()
	queries := g.Queries(objs, 5)

	build := func() *Polystore {
		p := New()
		for _, o := range objs {
			if err := o.Load(p); err != nil {
				t.Fatalf("seed %d: load %s into %s: %v", seed, o.Name, o.Eng, err)
			}
		}
		return p
	}
	ref := build()
	chaos := build()
	chaos.SetRetryPolicy(chaosRetryPolicy)

	fired := 0
	for qi, q := range queries {
		refRel, refErr := ref.Query(q)

		before := snapshotPolystore(t, chaos)
		specs := fault.Schedule(seed*1009+int64(qi), CastFailpoints(), CastWriteFailpoints())
		for _, sp := range specs {
			fault.Arm(sp)
		}
		rel, err := chaos.Query(q)
		for _, sp := range specs {
			fired += fault.Fired(sp.Point)
		}
		fault.Reset()
		after := snapshotPolystore(t, chaos)

		if before != after {
			t.Fatalf("seed %d: polystore state changed across faulted query %s\nschedule: %+v\nbefore:\n%s\nafter:\n%s",
				seed, q, specs, before, after)
		}
		switch {
		case refErr == nil && err == nil:
			if cr, cc := canonRelation(refRel), canonRelation(rel); cr != cc {
				t.Fatalf("seed %d: faulted run diverges from fault-free run on %s\nschedule: %+v\nref:     %s\nfaulted: %s\n%s",
					seed, q, specs, cr, cc, describeCatalog(objs))
			}
		case refErr == nil && err != nil:
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Fatalf("seed %d: faulted query %s failed without the injected fault in its chain: %v\nschedule: %+v",
					seed, q, err, specs)
			}
		case refErr != nil && err == nil:
			t.Fatalf("seed %d: query %s fails fault-free (%v) but succeeded under injection\nschedule: %+v",
				seed, q, refErr, specs)
		}
	}
	return fired
}

// snapshotPolystore captures everything a query could corrupt: the
// catalog, each engine's raw object listing (so unregistered staged
// leftovers are caught too), and the canonical contents of every
// catalog object.
func snapshotPolystore(t *testing.T, p *Polystore) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("catalog:")
	for _, o := range p.Objects() {
		fmt.Fprintf(&sb, " %s@%s->%s", o.Name, o.Engine, o.Physical)
	}
	listings := [][]string{
		p.Relational.Tables(),
		p.ArrayStore.Names(),
		p.KV.Tables(),
		tileNames(p),
	}
	for i, names := range listings {
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		fmt.Fprintf(&sb, "\nengine%d: %s", i, strings.Join(sorted, ","))
	}
	for _, o := range p.Objects() {
		if o.Engine == EngineSStore {
			continue // stream windows are time-indexed, not query-mutable
		}
		rel, err := p.Dump(o.Name)
		if err != nil {
			fmt.Fprintf(&sb, "\n%s: dump error %v", o.Name, err)
			continue
		}
		fmt.Fprintf(&sb, "\n%s: %s", o.Name, canonRelation(rel))
	}
	return sb.String()
}

func tileNames(p *Polystore) []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.tile))
	for name := range p.tile {
		out = append(out, name)
	}
	return out
}
