// Package repro holds the top-level benchmark harness: one testing.B
// benchmark per experiment in DESIGN.md (E1–E11) plus the two figure
// reproductions (F1 architecture wiring, F2 SeeDB visualisation).
// `go test -bench=. -benchmem` regenerates per-operation numbers;
// `go run ./cmd/benchrunner` prints the full comparison tables.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/mimic"
	"repro/internal/scalar"
	"repro/internal/searchlight"
	"repro/internal/seedb"
	"repro/internal/stream"
	"repro/internal/tupleware"
)

// ---------- shared fixtures ----------

func benchSystem(b *testing.B, patients int) *demo.System {
	b.Helper()
	cfg := mimic.DefaultConfig()
	cfg.Patients = patients
	sys, err := demo.Load(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func mustQuery(b *testing.B, p *core.Polystore, q string) *engine.Relation {
	b.Helper()
	rel, err := p.Query(q)
	if err != nil {
		b.Fatalf("Query(%q): %v", q, err)
	}
	return rel
}

// ---------- F1: architecture (Figure 1) ----------

// TestArchitectureFigure1 verifies the Figure 1 wiring: eight islands
// over four-plus engines, every engine reachable from at least one
// island, and CAST connecting them.
func TestArchitectureFigure1(t *testing.T) {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 40
	sys, err := demo.Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Poly
	if got := len(core.Islands()); got != 8 {
		t.Fatalf("Figure 1 requires 8 islands, got %d", got)
	}
	// Every degenerate island answers a native query.
	for _, q := range []string{
		`POSTGRES(SELECT COUNT(*) FROM patients)`,
		`SCIDB(aggregate(waveforms, count(v)))`,
		`TEXT(count(notes))`,
		`STREAM(appended(vitals))`,
	} {
		if _, err := p.Query(q); err != nil {
			t.Errorf("island query %q failed: %v", q, err)
		}
	}
	// Multi-engine islands reach engines through shims.
	if _, err := p.Query(`RELATIONAL(SELECT COUNT(*) FROM waveforms)`); err != nil {
		t.Errorf("relational island shim: %v", err)
	}
	if _, err := p.Query(`D4M(sumrows(assoc(notes)))`); err != nil {
		t.Errorf("d4m island shim: %v", err)
	}
	// CAST moves data between engines.
	if _, err := p.Cast("patients", core.EngineSciDB, core.CastOptions{}); err != nil {
		t.Errorf("cast: %v", err)
	}
}

// ---------- F2: SeeDB sample visualisation (Figure 2) ----------

// TestSeeDBFigure2 reproduces the paper's Figure 2: SeeDB surfaces the
// race × stay-duration view for the ICU cohort, whose trend reverses
// the rest of the data.
func TestSeeDBFigure2(t *testing.T) {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 400
	ds, err := mimic.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := admissionsFlat(ds)
	results, _, err := seedb.Explore(rel, "ward = 'icu'",
		[]string{"race", "sex", "drug"}, []string{"days"},
		[]seedb.Agg{seedb.AggAvg}, seedb.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	top := results[0]
	if top.View.Dim != "race" {
		t.Fatalf("top view %v, want the race dimension", top.View)
	}
	if !(top.Target["white"] < top.Target["black"] && top.Reference["white"] > top.Reference["black"]) {
		t.Errorf("trend not reversed: target %v reference %v", top.Target, top.Reference)
	}
}

func admissionsFlat(ds *mimic.Dataset) *engine.Relation {
	raceOf := map[int64]string{}
	sexOf := map[int64]string{}
	for _, p := range ds.Patients.Tuples {
		raceOf[p[0].I] = p[4].S
		sexOf[p[0].I] = p[3].S
	}
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("ward", engine.TypeString), engine.Col("race", engine.TypeString),
		engine.Col("sex", engine.TypeString), engine.Col("drug", engine.TypeString),
		engine.Col("days", engine.TypeFloat)))
	for _, a := range ds.Admissions.Tuples {
		pid := a[1].I
		_ = rel.Append(engine.Tuple{a[2], engine.NewString(raceOf[pid]), engine.NewString(sexOf[pid]), a[4], a[3]})
	}
	return rel
}

// TestExperimentsRunAll smoke-tests the full benchrunner path.
func TestExperimentsRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	tables, err := experiments.RunAll(experiments.Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 11 {
		t.Fatalf("expected 11 experiment tables, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
	}
}

// ---------- E1 ----------

func BenchmarkE1_PolystoreVsOneSize(b *testing.B) {
	sys := benchSystem(b, 100)
	p := sys.Poly
	if _, err := p.Cast("waveforms", core.EnginePostgres, core.CastOptions{TargetName: "wf_rel"}); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Cast("notes", core.EnginePostgres, core.CastOptions{TargetName: "notes_rel"}); err != nil {
		b.Fatal(err)
	}
	b.Run("polystore_mixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustQuery(b, p, `POSTGRES(SELECT * FROM patients WHERE id = 42)`)
			mustQuery(b, p, `SCIDB(aggregate(subarray(waveforms, 1, 0, 5, 499), avg(v)))`)
			mustQuery(b, p, `TEXT(search(notes, 'very sick', 3))`)
		}
	})
	b.Run("one_size_relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustQuery(b, p, `POSTGRES(SELECT * FROM patients WHERE id = 42)`)
			mustQuery(b, p, `POSTGRES(SELECT AVG(v) FROM wf_rel WHERE patient <= 5)`)
			mustQuery(b, p, `POSTGRES(SELECT row, COUNT(*) FROM notes_rel WHERE value LIKE '%very sick%' GROUP BY row HAVING COUNT(*) >= 3)`)
		}
	})
}

// ---------- E2 ----------

func BenchmarkE2_CastBinaryVsCSV(b *testing.B) {
	p := core.New()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("name", engine.TypeString),
		engine.Col("score", engine.TypeFloat)))
	for i := 0; i < 20_000; i++ {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("row_%d", i)), engine.NewFloat(float64(i) / 3)})
	}
	if err := p.Relational.InsertRelation("src", rel); err != nil {
		b.Fatal(err)
	}
	if err := p.Register("src", core.EnginePostgres, "src"); err != nil {
		b.Fatal(err)
	}
	for name, mode := range map[string]core.CastMode{"binary": core.CastDirect, "csv_file": core.CastCSVFile} {
		b.Run(name, func(b *testing.B) {
			tmp := b.TempDir()
			for i := 0; i < b.N; i++ {
				res, err := p.Cast("src", core.EngineSciDB, core.CastOptions{Mode: mode, TempDir: tmp})
				if err != nil {
					b.Fatal(err)
				}
				_ = p.ArrayStore.Remove(res.Target)
				p.Deregister(res.Target)
			}
		})
	}
}

// e2Relation builds the E2-shaped (int, string, float) relation used by
// the codec and pipeline benchmarks.
func e2Relation(rows int) *engine.Relation {
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("name", engine.TypeString),
		engine.Col("score", engine.TypeFloat)))
	for i := 0; i < rows; i++ {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)),
			engine.NewString(fmt.Sprintf("row_%d", i)), engine.NewFloat(float64(i) / 3)})
	}
	return rel
}

// BenchmarkE2_CodecRoundTrip pins the acceptance criterion for the v2
// codec: encode+decode of 10k rows must be ≥2x faster than the seed v1
// codec it replaced (kept as WriteBinaryV1 for exactly this comparison).
func BenchmarkE2_CodecRoundTrip(b *testing.B) {
	rel := e2Relation(10_000)
	b.Run("v2_columnar", func(b *testing.B) {
		cb := engine.BatchFromRelation(rel)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := cb.WriteBinary(&buf); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.ReadBinaryColumnar(&buf, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := rel.WriteBinary(&buf); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.ReadBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seed_v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := rel.WriteBinaryV1(&buf); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.ReadBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2_CastPipeline measures the full pipelined CAST (encoder and
// decoder concurrent over a pipe) against the CSV file transport at a
// size large enough to engage the parallel decode path.
func BenchmarkE2_CastPipeline(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		p := core.New()
		name := fmt.Sprintf("src%d", rows)
		if err := p.Relational.InsertRelation(name, e2Relation(rows)); err != nil {
			b.Fatal(err)
		}
		if err := p.Register(name, core.EnginePostgres, name); err != nil {
			b.Fatal(err)
		}
		for label, mode := range map[string]core.CastMode{"binary": core.CastDirect, "csv_file": core.CastCSVFile} {
			b.Run(fmt.Sprintf("%s/%d", label, rows), func(b *testing.B) {
				tmp := b.TempDir()
				for i := 0; i < b.N; i++ {
					res, err := p.Cast(name, core.EngineSciDB, core.CastOptions{Mode: mode, TempDir: tmp})
					if err != nil {
						b.Fatal(err)
					}
					_ = p.ArrayStore.Remove(res.Target)
					p.Deregister(res.Target)
				}
			})
		}
	}
}

// ---------- E3 ----------

func BenchmarkE3_StreamLatency(b *testing.B) {
	e := stream.NewEngine()
	schema := engine.NewSchema(engine.Col("patient", engine.TypeInt), engine.Col("v", engine.TypeFloat))
	if err := e.CreateStream("wf", schema, 125); err != nil {
		b.Fatal(err)
	}
	alerts := 0
	_ = e.RegisterTrigger("wf", "thresh", func(view *stream.WindowView, _ stream.Record) error {
		avg, err := view.Aggregate("avg", "v")
		if err != nil {
			return err
		}
		if avg > 0.95 {
			alerts++
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Append("wf", stream.Record{TS: int64(i),
			Values: engine.Tuple{engine.NewInt(1), engine.NewFloat(float64(i%100) / 100)}})
	}
	_ = alerts
}

// ---------- E4 ----------

func BenchmarkE4_SeeDBPruning(b *testing.B) {
	cfg := mimic.DefaultConfig()
	cfg.Patients = 400
	ds, err := mimic.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rel := admissionsFlat(ds)
	dims := []string{"race", "sex", "drug"}
	run := func(b *testing.B, opts seedb.Options) {
		for i := 0; i < b.N; i++ {
			if _, _, err := seedb.Explore(rel, "ward = 'icu'", dims, []string{"days"},
				[]seedb.Agg{seedb.AggAvg, seedb.AggSum, seedb.AggCount}, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("exhaustive", func(b *testing.B) { run(b, seedb.Options{K: 3}) })
	b.Run("pruned", func(b *testing.B) { run(b, seedb.Options{K: 3, Prune: true, Seed: 1}) })
}

// ---------- E5 ----------

func BenchmarkE5_TuplewareFusion(b *testing.B) {
	data := make([]tupleware.Row, 50_000)
	for i := range data {
		data[i] = tupleware.Row{float64(i % 100), float64((i * 7) % 100), 0}
	}
	p := tupleware.NewPipeline().
		Map(func(r tupleware.Row) tupleware.Row { r[2] = r[0]*0.3 + r[1]*0.7; return r },
			tupleware.UDFStats{EstCyclesPerCall: 20}).
		Filter(func(r tupleware.Row) bool { return r[2] > 10 }, tupleware.UDFStats{EstCyclesPerCall: 5}).
		Reduce(
			func() tupleware.Row { return tupleware.Row{0, 0} },
			func(acc, r tupleware.Row) tupleware.Row { acc[0] += r[2]; acc[1]++; return acc },
			func(x, y tupleware.Row) tupleware.Row { x[0] += y[0]; x[1] += y[1]; return x })
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.RunCompiled(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("staged_hadoop_style", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.RunStaged(data, tupleware.DefaultStagedConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- E6 ----------

func BenchmarkE6_AdaptivePlacement(b *testing.B) {
	const n = 8192
	w := mimic.Waveform(1, 1, 0, n, 125, false)
	p := core.New()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("t", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	for i, v := range w {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(v)})
	}
	if err := p.Relational.InsertRelation("wf_pg", rel); err != nil {
		b.Fatal(err)
	}
	if err := p.Register("wf_pg", core.EnginePostgres, "wf_pg"); err != nil {
		b.Fatal(err)
	}
	if err := p.Load(core.EngineSciDB, "wf_arr", rel, core.CastOptions{ArrayDims: []string{"t"}, Dense: true}); err != nil {
		b.Fatal(err)
	}
	b.Run("linear_algebra_on_postgres", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := p.Relational.Query(`SELECT v FROM wf_pg ORDER BY t`)
			if err != nil {
				b.Fatal(err)
			}
			vals, _ := res.Floats("v")
			_ = analytics.PowerSpectrum(vals)
		}
	})
	b.Run("linear_algebra_on_scidb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := p.ArrayStore.Get("wf_arr")
			if err != nil {
				b.Fatal(err)
			}
			vals, _ := a.Floats("v")
			_ = analytics.PowerSpectrum(vals)
		}
	})
}

// ---------- E7 ----------

func BenchmarkE7_TightVsLooseCoupling(b *testing.B) {
	const n = 16_384
	w := mimic.Waveform(1, 1, 0, n, 125, false)
	p := core.New()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Col("t", engine.TypeInt), engine.Col("v", engine.TypeFloat)))
	for i, v := range w {
		_ = rel.Append(engine.Tuple{engine.NewInt(int64(i)), engine.NewFloat(v)})
	}
	if err := p.Load(core.EngineSciDB, "wf", rel, core.CastOptions{ArrayDims: []string{"t"}, Dense: true}); err != nil {
		b.Fatal(err)
	}
	b.Run("tight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _ := p.ArrayStore.Get("wf")
			vals, _ := a.Floats("v")
			_ = analytics.PowerSpectrum(vals)
		}
	})
	b.Run("loose_cast_per_call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := p.Cast("wf", core.EnginePostgres, core.CastOptions{})
			if err != nil {
				b.Fatal(err)
			}
			out, err := p.Relational.Query(`SELECT v FROM ` + res.Target + ` ORDER BY t`)
			if err != nil {
				b.Fatal(err)
			}
			vals, _ := out.Floats("v")
			_ = analytics.PowerSpectrum(vals)
			_ = p.Relational.DropTable(res.Target)
			p.Deregister(res.Target)
		}
	})
}

// ---------- E8 ----------

func BenchmarkE8_SearchlightSynopsis(b *testing.B) {
	sig := mimic.Waveform(1, 3, 0, 100_000, 125, false)
	q := searchlight.Query{
		WindowLen: 64,
		Constraints: []searchlight.Constraint{
			{Agg: "avg", Lo: -0.02, Hi: 0.02}, {Agg: "max", Lo: -10, Hi: 1.4}},
	}
	syn, err := searchlight.BuildSynopsis(sig, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("synopsis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := searchlight.Search(sig, syn, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := searchlight.SearchExhaustive(sig, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- E9 ----------

func BenchmarkE9_ScalaRPrefetch(b *testing.B) {
	cfg := mimic.DefaultConfig()
	const patients, samples = 32, 2048
	src, err := demoMap(cfg.Seed, patients, samples, cfg.SampleRate)
	if err != nil {
		b.Fatal(err)
	}
	trace := [][3]int{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 3, 0}, {2, 3, 1}, {2, 2, 1}}
	for _, prefetch := range []bool{false, true} {
		name := "no_prefetch"
		if prefetch {
			name = "prefetch"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				br, err := scalar.NewBrowser(src, "v", 16, 3, 256)
				if err != nil {
					b.Fatal(err)
				}
				br.Prefetch = prefetch
				for _, s := range trace {
					if _, err := br.Fetch(s[0], s[1], s[2]); err != nil {
						b.Fatal(err)
					}
					br.Quiesce() // think time: prefetch overlaps it
				}
			}
		})
	}
}

func demoMap(seed int64, patients, samples int, rate int) (*coreArray, error) {
	src, err := coreNewArray("bench_map", int64(patients), int64(samples))
	if err != nil {
		return nil, err
	}
	for pid := 1; pid <= patients; pid++ {
		w := mimic.Waveform(seed, pid, 0, samples, rate, false)
		for i, v := range w {
			if err := src.Set([]int64{int64(pid), int64(i)}, engine.Tuple{engine.NewFloat(v)}); err != nil {
				return nil, err
			}
		}
	}
	return src, nil
}

// ---------- E10 ----------

func BenchmarkE10_EngineSpecialisation(b *testing.B) {
	sys := benchSystem(b, 150)
	p := sys.Poly
	if _, err := p.Cast("patients", core.EngineAccumulo, core.CastOptions{TargetName: "patients_kv"}); err != nil {
		b.Fatal(err)
	}
	if _, err := p.Cast("notes", core.EnginePostgres, core.CastOptions{TargetName: "notes_rel"}); err != nil {
		b.Fatal(err)
	}
	cases := map[string]string{
		"lookup/postgres":      `POSTGRES(SELECT * FROM patients WHERE id = 77)`,
		"lookup/accumulo":      `TEXT(get(patients_kv, '77'))`,
		"aggregate/postgres":   `POSTGRES(SELECT race, AVG(age) FROM patients GROUP BY race)`,
		"text_search/accumulo": `TEXT(search(notes, 'very sick', 3))`,
		"text_search/postgres": `POSTGRES(SELECT row, COUNT(*) FROM notes_rel WHERE value LIKE '%very sick%' GROUP BY row HAVING COUNT(*) >= 3)`,
		"array_agg/scidb":      `SCIDB(aggregate(waveforms, avg(v)))`,
	}
	for name, q := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustQuery(b, p, q)
			}
		})
	}
}

// ---------- E11 ----------

// BenchmarkE11_CastPushdown: the selective cross-island query with the
// pushdown planner on vs off — the E11 experiment as a benchmark.
func BenchmarkE11_CastPushdown(b *testing.B) {
	p := core.New()
	schema := engine.NewSchema(
		engine.Col("id", engine.TypeInt), engine.Col("a", engine.TypeInt),
		engine.Col("b", engine.TypeFloat), engine.Col("c", engine.TypeString),
		engine.Col("d", engine.TypeString), engine.Col("e", engine.TypeFloat),
	)
	rel := engine.NewRelation(schema)
	for i := 0; i < 20_000; i++ {
		_ = rel.Append(engine.Tuple{
			engine.NewInt(int64(i)), engine.NewInt(int64(i % 100)),
			engine.NewFloat(float64(i) * 0.5), engine.NewString(fmt.Sprintf("name_%06d", i)),
			engine.NewString("xxxxxxxxxxxxxxxxxxxx"), engine.NewFloat(float64(i)),
		})
	}
	if err := p.Load(core.EnginePostgres, "big", rel, core.CastOptions{}); err != nil {
		b.Fatal(err)
	}
	const q = `RELATIONAL(SELECT a, b FROM CAST(big, relation) WHERE a < 10)`
	for _, on := range []bool{false, true} {
		name := "planner=off"
		if on {
			name = "planner=on"
		}
		b.Run(name, func(b *testing.B) {
			p.SetPushdown(on)
			defer p.SetPushdown(true)
			for i := 0; i < b.N; i++ {
				mustQuery(b, p, q)
			}
		})
	}
}
